"""Shared-memory log transport: the flat-buffer :class:`ShmLogArena`.

Root-split workers need three things from each log: the event
vocabulary, the traces, and the ``I_t`` posting bitsets.  Pickling a
full :class:`~repro.log.eventlog.EventLog` per shard re-serializes and
re-parses all of it for every call — PR 5's recorded 0.34–0.40x speedup
is mostly that cost.  The arena replaces the pickle with one
``multiprocessing.shared_memory`` segment per log, written once by the
parent and attached (not copied, not unpickled) by every worker:

* the :class:`~repro.kernel.interner.EventInterner`'s dense ids become
  an id→name offset table over a UTF-8 blob (id ``i`` is name ``i`` —
  first-appearance order is the serialization order, so rebuilt ids are
  bit-identical to the parent's);
* traces are a single flat ``uint32`` id array sliced by a
  ``uint64`` offset table (one entry per trace);
* the :class:`~repro.log.index.TraceIndex` posting bitsets — arbitrary-
  precision ints — are stored big-endian under a third offset table,
  one posting per event id.

Workers :meth:`attach` by segment name, :meth:`rebuild` a log whose
interner and trace index are pre-seeded from the buffer (no rescans),
and :meth:`close` their view; only the creating parent :meth:`unlink`s.
The rebuilt objects are plain Python values (ints, str, tuples) copied
out of the buffer during ``rebuild`` — the segment can be closed the
moment ``rebuild`` returns, and rebuilt state is equal to what pickling
the log would have produced (the round-trip property tests pin this).

Layout (all offsets relative to buffer start, little-endian)::

    header   magic "RSHMARE1" | u64 version | u64 num_events
             | u64 num_traces | u64 off_names | u64 off_traces
             | u64 off_postings | u64 used_bytes | u64 name_len
    log name UTF-8, name_len bytes
    names    u64 offsets[num_events + 1] | UTF-8 blob
    traces   u64 offsets[num_traces + 1] | u32 ids[total_events]
    postings u64 offsets[num_events + 1] | big-endian int blob
"""

from __future__ import annotations

import atexit
import os
import struct
from multiprocessing import resource_tracker, shared_memory

from repro.kernel.interner import EventInterner
from repro.log.eventlog import EventLog
from repro.log.index import TraceIndex
from repro.resilience.supervise import TRACKER_PATCH_LOCK, get_segment_registry

_MAGIC = b"RSHMARE1"
_VERSION = 1
_HEADER = struct.Struct("<8s8Q")

#: Segment name -> creating pid for segments this process created and
#: has not yet unlinked — the atexit backstop unlinks whatever is left
#: so a clean interpreter exit can never leak ``/dev/shm`` segments
#: even if a cache or finalizer was skipped.  The pid guard keeps a
#: forked child (which inherits this dict) from destroying its
#: parent's live segments.  Abrupt deaths (SIGKILL) are covered by the
#: on-disk :class:`~repro.resilience.supervise.ShmSegmentRegistry`,
#: reaped at the next pool/daemon startup.
_OWNED_SEGMENTS: dict[str, int] = {}


def _atexit_unlink_owned() -> None:  # pragma: no cover - interpreter exit
    registry = get_segment_registry()
    pid = os.getpid()
    for name, owner_pid in list(_OWNED_SEGMENTS.items()):
        if owner_pid != pid:
            continue
        try:
            segment = shared_memory.SharedMemory(name=name)
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass
        registry.unregister(name)
        _OWNED_SEGMENTS.pop(name, None)


atexit.register(_atexit_unlink_owned)


class ShmArenaError(RuntimeError):
    """A shared-memory arena could not be created, attached, or parsed."""


def _pack_offsets(chunks: list[bytes]) -> tuple[bytes, bytes]:
    """``chunks`` as (u64 offset table, concatenated blob)."""
    offsets = [0]
    for chunk in chunks:
        offsets.append(offsets[-1] + len(chunk))
    table = struct.pack(f"<{len(offsets)}Q", *offsets)
    return table, b"".join(chunks)


class ShmLogArena:
    """One log serialized into one shared-memory segment.

    Lifecycle: the parent calls :meth:`create` (building the buffer from
    the log's interner and trace index), ships ``arena.name`` to workers,
    and eventually calls :meth:`unlink`.  Workers call :meth:`attach`,
    :meth:`rebuild`, then :meth:`close`.  ``close`` is idempotent and
    safe on both sides; ``unlink`` must run exactly once, in the parent.
    """

    def __init__(self, segment: shared_memory.SharedMemory, owner: bool):
        self._segment: shared_memory.SharedMemory | None = segment
        self._owner = owner

    # ------------------------------------------------------------------
    # Creation (parent side)
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, log: EventLog, index: TraceIndex | None = None
    ) -> "ShmLogArena":
        """Serialize ``log`` (interner ids, traces, postings) into shm.

        ``index`` may be a pre-built, fresh :class:`TraceIndex` for the
        log; one is built when omitted.  Building the interner and index
        here is O(total events) — paid once per (log, generation), then
        amortized across every worker and every call through the arena
        cache in :mod:`repro.parallel.pool`.
        """
        interner = log.interner()
        if index is None:
            index = TraceIndex(log)
        elif index.log is not log:
            raise ShmArenaError("trace index was built for a different log")
        index.refresh()

        events = [interner.event_of(i) for i in range(len(interner))]
        name_table, name_blob = _pack_offsets(
            [event.encode("utf-8") for event in events]
        )
        traces = interner.interned_traces
        trace_table, trace_blob = _pack_offsets(
            [struct.pack(f"<{len(t)}I", *t) for t in traces]
        )
        posting_table, posting_blob = _pack_offsets(
            [
                _encode_posting(index.posting_bits(event))
                for event in events
            ]
        )
        log_name = log.name.encode("utf-8")

        off_names = _HEADER.size + len(log_name)
        off_traces = off_names + len(name_table) + len(name_blob)
        off_postings = off_traces + len(trace_table) + len(trace_blob)
        used = off_postings + len(posting_table) + len(posting_blob)
        header = _HEADER.pack(
            _MAGIC, _VERSION, len(events), len(traces),
            off_names, off_traces, off_postings, used, len(log_name),
        )
        payload = b"".join(
            (
                header, log_name,
                name_table, name_blob,
                trace_table, trace_blob,
                posting_table, posting_blob,
            )
        )
        assert len(payload) == used
        # Creation depends on the *real* resource_tracker registration;
        # the shared lock keeps it from racing a reaper's or attacher's
        # temporary no-op patch of that process-global hook.
        with TRACKER_PATCH_LOCK:
            segment = shared_memory.SharedMemory(create=True, size=max(used, 1))
        segment.buf[:used] = payload
        get_segment_registry().register(segment.name)
        _OWNED_SEGMENTS[segment.name] = os.getpid()
        return cls(segment, owner=True)

    # ------------------------------------------------------------------
    # Attachment (worker side)
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, name: str) -> "ShmLogArena":
        """Open an existing arena by segment name (no copy)."""
        # CPython < 3.13 registers *attached* segments with the resource
        # tracker as if this process owned them; the tracker's cache is a
        # set shared by the whole process tree, so the spurious entries
        # collapse with the creator's and any later unregister/unlink pair
        # trips KeyError tracebacks inside the tracker.  Suppress the
        # attach-side registration instead — creation-side tracking in
        # the parent stays balanced (one register at create, one
        # unregister at unlink).  The shared lock serializes this patch
        # window against concurrent creates (which need the real hook)
        # and the reaper's identical patch in supervise._unlink_segment.
        with TRACKER_PATCH_LOCK:
            tracked_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError as error:
                raise ShmArenaError(
                    f"no shared-memory arena {name!r}"
                ) from error
            finally:
                resource_tracker.register = tracked_register
        arena = cls(segment, owner=False)
        if segment.size < _HEADER.size:
            arena.close()
            raise ShmArenaError(f"segment {name!r} is not a log arena")
        magic, version = _HEADER.unpack_from(segment.buf, 0)[:2]
        if magic != _MAGIC:
            arena.close()
            raise ShmArenaError(f"segment {name!r} is not a log arena")
        if version != _VERSION:
            arena.close()
            raise ShmArenaError(
                f"arena {name!r} has layout version {version}, "
                f"expected {_VERSION}"
            )
        return arena

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def rebuild(self) -> tuple[EventLog, TraceIndex]:
        """Rebuild ``(log, trace_index)`` read-only views from the buffer.

        The log's interner is pre-seeded with the serialized dense ids
        (same first-appearance order, hence bit-identical ids) and the
        trace index with the serialized posting bitsets — neither is
        rescanned from the traces.  Trace tuples share one ``str``
        object per event name, so the rebuilt log is as deduplicated as
        the parent's.  Everything returned is an ordinary heap object;
        the arena may be closed as soon as this returns.
        """
        segment = self._segment
        if segment is None:
            raise ShmArenaError("arena is closed")
        buf = segment.buf
        (
            _magic, _version, num_events, num_traces,
            off_names, off_traces, off_postings, _used, name_len,
        ) = _HEADER.unpack_from(buf, 0)

        log_name = bytes(buf[_HEADER.size:_HEADER.size + name_len]).decode(
            "utf-8"
        )
        name_offsets = struct.unpack_from(f"<{num_events + 1}Q", buf, off_names)
        blob_start = off_names + 8 * (num_events + 1)
        names_blob = bytes(
            buf[blob_start:blob_start + name_offsets[num_events]]
        )
        events = [
            names_blob[name_offsets[i]:name_offsets[i + 1]].decode("utf-8")
            for i in range(num_events)
        ]

        trace_offsets = struct.unpack_from(
            f"<{num_traces + 1}Q", buf, off_traces
        )
        ids_start = off_traces + 8 * (num_traces + 1)
        int_traces = []
        for i in range(num_traces):
            begin, end = trace_offsets[i], trace_offsets[i + 1]
            count = (end - begin) // 4
            int_traces.append(
                struct.unpack_from(f"<{count}I", buf, ids_start + begin)
            )

        posting_offsets = struct.unpack_from(
            f"<{num_events + 1}Q", buf, off_postings
        )
        postings_start = off_postings + 8 * (num_events + 1)
        postings_blob = bytes(
            buf[postings_start:postings_start + posting_offsets[num_events]]
        )
        postings = {
            events[i]: int.from_bytes(
                postings_blob[posting_offsets[i]:posting_offsets[i + 1]],
                "big",
            )
            for i in range(num_events)
        }

        log = EventLog(
            ([events[e] for e in trace] for trace in int_traces),
            name=log_name,
        )
        log.attach_interner(EventInterner.from_dense(events, int_traces))
        index = TraceIndex.from_postings(log, postings)
        return log, index

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The shared-memory segment name workers attach by."""
        if self._segment is None:
            raise ShmArenaError("arena is closed")
        return self._segment.name

    @property
    def size(self) -> int:
        """Allocated segment size in bytes (0 once closed)."""
        return self._segment.size if self._segment is not None else 0

    def close(self) -> None:
        """Release this process's view of the segment (idempotent)."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def unlink(self) -> None:
        """Destroy the segment (owner side; closes the view first)."""
        segment = self._segment
        name = segment.name if segment is not None else None
        self.close()
        if segment is not None and self._owner:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            get_segment_registry().unregister(name)
            _OWNED_SEGMENTS.pop(name, None)

    def __enter__(self) -> "ShmLogArena":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    def __repr__(self) -> str:
        if self._segment is None:
            return "ShmLogArena(closed)"
        side = "owner" if self._owner else "view"
        return f"ShmLogArena({self.name!r}, {self.size} bytes, {side})"


def _encode_posting(bits: int) -> bytes:
    """A posting bitset as minimal big-endian bytes (b"" for 0)."""
    if not bits:
        return b""
    return bits.to_bytes((bits.bit_length() + 7) // 8, "big")
