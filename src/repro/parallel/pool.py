"""Persistent warm worker pools and the cross-process coordination cells.

PR 5's parallel layer created a ``ProcessPoolExecutor`` per call — every
``parallel_match`` paid process spawn, log pickling, and a full
per-worker :class:`~repro.core.scoring.ScoreModel` build before its
first expansion.  This module makes those one-time costs actually
one-time:

* :class:`WarmPool` owns a long-lived executor plus the two inherited
  coordination cells every run reuses — the :class:`SharedIncumbent`
  (cross-process best-score max cell) and the :class:`ChunkCursor`
  (the work-stealing queue: a fetch-and-increment claim counter over a
  deterministic chunk list).  Both are created *with* the pool so they
  reach workers by inheritance, the only channel ``multiprocessing``
  synchronization primitives support.
* The pool caches one :class:`~repro.parallel.shm.ShmLogArena` per
  ``(log, generation)`` on the parent side, so repeated matches over
  the same log reuse one shared-memory segment (and its name, which is
  the workers' model-cache key).
* Workers keep a bounded LRU of materialized score models keyed by the
  :class:`ModelHandle`'s cache key: the second call on the same logs
  skips attach + rebuild + model build entirely — the per-process model
  build happens once per process lifetime, not once per call.
* A lazily created, explicitly closeable module-level pool
  (:func:`get_warm_pool` / :func:`close_warm_pool`) survives across
  ``match()`` / ``parallel_sweep`` calls and backs the service's
  :class:`~repro.service.workers.WorkerPool`.  It is fork-safe: a
  process that inherits the singleton by forking discards it on first
  use instead of sharing the parent's executor.

Runs that use the shared cells are serialized by :attr:`WarmPool.lock`
— the cells are per-run state, and ``parallel_match`` resets them under
that lock.  Plain :meth:`WarmPool.submit` fan-outs (sweeps, service
jobs) don't touch the cells and need no lock.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.log.eventlog import EventLog
from repro.obs.logs import mark_worker_process


class SharedIncumbent:
    """A cross-process max-score cell with ``peek``/``offer`` semantics.

    Wraps a double ``multiprocessing.Value``.  ``peek`` is a plain read
    (workers poll it between expansions); ``offer`` takes the value's
    lock only to apply a compare-and-max.  Scores only ever increase
    within a run, so a stale ``peek`` merely delays pruning by one poll
    interval — it can never make pruning unsound.  :meth:`reset` rearms
    the cell between runs (parent side, pool idle).
    """

    def __init__(self, initial: float = float("-inf"), context=None):
        ctx = context if context is not None else multiprocessing
        self._value = ctx.Value("d", initial)

    def peek(self) -> float:
        return self._value.value

    def offer(self, score: float) -> float:
        with self._value.get_lock():
            if score > self._value.value:
                self._value.value = score
            return self._value.value

    def reset(self, value: float = float("-inf")) -> None:
        with self._value.get_lock():
            self._value.value = value


class ChunkCursor:
    """The work-stealing queue: a shared next-chunk claim counter.

    The chunk *list* is deterministic and shipped to every worker; only
    the claim order is dynamic.  Workers loop ``claim()`` until it runs
    past the chunk count — a fast worker simply claims (steals) chunks
    a static partition would have assigned elsewhere.  One atomic
    fetch-and-increment per chunk is the entire queue protocol: there is
    nothing to enqueue, rebalance, or shut down.
    """

    def __init__(self, context=None):
        ctx = context if context is not None else multiprocessing
        self._next = ctx.Value("q", 0)

    def claim(self) -> int:
        """Atomically claim and return the next chunk index."""
        with self._next.get_lock():
            index = self._next.value
            self._next.value = index + 1
            return index

    def reset(self) -> None:
        with self._next.get_lock():
            self._next.value = 0


class LruCache:
    """A size-capped mapping with FIFO-recency eviction and a counter."""

    def __init__(self, cap: int):
        if cap < 1:
            raise ValueError("cap must be positive")
        self.cap = cap
        self.evictions = 0
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, value) -> list:
        """Insert and return the evicted values (possibly empty)."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted = []
        while len(self._entries) > self.cap:
            _, old = self._entries.popitem(last=False)
            evicted.append(old)
            self.evictions += 1
        return evicted

    def pop(self, key):
        return self._entries.pop(key, None)

    def clear(self) -> list:
        values = list(self._entries.values())
        self._entries.clear()
        return values

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries


@dataclass(frozen=True)
class ModelHandle:
    """A picklable description of one score model for the workers.

    ``transport`` selects how the logs travel: ``"shm"`` ships only the
    two arena segment names (workers attach and rebuild); ``"pickle"``
    carries the logs in the handle (the portable fallback — one log
    pickle per task submission).  ``cache_key`` identifies the
    materialized model in the worker-side LRU: arena names are stable
    across calls thanks to the parent's arena cache, so warm workers
    hit; pickle tokens are minted per ``(log id, generation)`` by the
    parent for the same effect.
    """

    transport: str
    cache_key: tuple
    patterns: tuple
    bound: object
    arenas: tuple[str, str] | None = None
    logs: tuple[EventLog, EventLog] | None = field(default=None, compare=False)


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

#: Installed once per worker process by the pool initializer: the
#: inherited coordination cells.
_WORKER_CELLS: dict = {}

#: Materialized score models, keyed by ``ModelHandle.cache_key``.  Score
#: models are heavy (interned logs, postings, automata, f1 tables); a
#: small cap bounds warm-worker memory while still covering the
#: steady-state "same logs every call" case.
MODEL_CACHE_CAP = 4
_MODEL_CACHE = LruCache(MODEL_CACHE_CAP)


def _init_pool_worker(incumbent: SharedIncumbent, cursor: ChunkCursor) -> None:
    _WORKER_CELLS["incumbent"] = incumbent
    _WORKER_CELLS["cursor"] = cursor
    # Flag the process as a pool worker so chatty components (heartbeat
    # reporters) reroute through the structured logger instead of
    # shredding the parent's inherited stderr with raw interleaved lines.
    mark_worker_process()


def worker_cells() -> tuple[SharedIncumbent, ChunkCursor]:
    """The inherited (incumbent, cursor) pair — worker processes only."""
    return _WORKER_CELLS["incumbent"], _WORKER_CELLS["cursor"]


def materialize_model(handle: ModelHandle):
    """The worker-side score model for ``handle``: ``(model, cache_hit)``.

    On a cache miss the model is built once — from attached shared
    memory (``shm``) or the pickled logs (``pickle``) — and cached under
    the handle's key for every later call that names the same logs,
    patterns and bound.
    """
    model = _MODEL_CACHE.get(handle.cache_key)
    if model is not None:
        return model, True
    # Local import: repro.core.scoring sits above this substrate module.
    from repro.core.scoring import ScoreModel

    if handle.transport == "shm":
        from repro.parallel.shm import ShmLogArena

        assert handle.arenas is not None
        index_pair = []
        logs = []
        for name in handle.arenas:
            arena = ShmLogArena.attach(name)
            try:
                log, index = arena.rebuild()
            finally:
                arena.close()
            logs.append(log)
            index_pair.append(index)
        log_1, log_2 = logs
        trace_index_1, trace_index_2 = index_pair
    else:
        assert handle.logs is not None
        log_1, log_2 = handle.logs
        trace_index_1 = trace_index_2 = None
    model = ScoreModel(
        log_1,
        log_2,
        list(handle.patterns),
        bound=handle.bound,
        trace_index_1=trace_index_1,
        trace_index_2=trace_index_2,
    )
    _MODEL_CACHE.put(handle.cache_key, model)
    return model, False


def model_cache_stats() -> dict:
    """This process's model-cache occupancy/evictions (tests, debugging)."""
    return {"entries": len(_MODEL_CACHE), "evictions": _MODEL_CACHE.evictions}


# ----------------------------------------------------------------------
# Parent-process side
# ----------------------------------------------------------------------

#: Parent-side arena cache bound: segments for this many distinct
#: ``(log, generation)`` pairs stay mapped; older ones are unlinked.
ARENA_CACHE_CAP = 8

#: Parent-side warm-start seed cache bound (one small entry per model
#: cache key: a score plus one complete mapping).
SEED_CACHE_CAP = 8


class WarmPool:
    """A persistent executor plus everything a parallel run inherits.

    Parameters
    ----------
    workers:
        Worker-process count (the executor's ``max_workers``).

    The pool is *warm*: once a worker process has built a score model
    for a given log pair it keeps it cached, so only the first call
    pays the build.  :attr:`spawned_runs`/:attr:`reused_runs` count how
    often :func:`get_warm_pool` had to (re)create a pool versus handing
    back a live one — the pool-reuse gauge the probes export.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        ctx = multiprocessing.get_context()
        self._ctx = ctx
        self.incumbent = SharedIncumbent(context=ctx)
        self.cursor = ChunkCursor(context=ctx)
        #: Serializes runs that use the shared cells (reset-then-run).
        self.lock = threading.Lock()
        self._arena_lock = threading.Lock()
        self._arenas: LruCache = LruCache(ARENA_CACHE_CAP)
        self._seed_lock = threading.Lock()
        self._seeds: LruCache = LruCache(SEED_CACHE_CAP)
        self._pickle_tokens: dict[tuple, str] = {}
        self._token_serial = 0
        #: Times the executor was rebuilt after a worker death/runaway.
        self.respawns = 0
        # Crash-safe shm lifecycle: before mapping any new segments,
        # unlink segments a *dead* process left behind (a SIGKILLed
        # daemon cannot run its own atexit hooks; the next pool pays
        # one cheap ledger scan instead).
        from repro.resilience.supervise import reap_orphan_segments

        self.reaped_at_start = reap_orphan_segments()
        self.executor = self._spawn_executor()
        self._closed = False

    def _spawn_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._ctx,
            initializer=_init_pool_worker,
            initargs=(self.incumbent, self.cursor),
        )

    # -- generic task fan-out -------------------------------------------
    def submit(self, fn, /, *args, **kwargs):
        """Submit a plain picklable task to the warm executor."""
        return self.executor.submit(fn, *args, **kwargs)

    # -- supervision -----------------------------------------------------
    def worker_pids(self) -> list[int]:
        """Live worker process ids (empty until the first submission —
        ``ProcessPoolExecutor`` spawns workers lazily)."""
        processes = getattr(self.executor, "_processes", None) or {}
        return [pid for pid, proc in processes.items() if proc.is_alive()]

    def respawn(self, kill_workers: bool = False) -> None:
        """Replace a broken executor with a fresh one, same shared cells.

        The incumbent and cursor are plain ``multiprocessing`` values;
        re-passing them as initargs re-inherits them into the new
        workers, so a respawned pool is a drop-in replacement — only the
        worker-side model caches are lost (they repopulate on first
        use).  ``kill_workers=True`` SIGKILLs the old workers first —
        the deadline-enforcement path, where a runaway job must be
        reclaimed, not waited on.
        """
        if self._closed:
            raise RuntimeError("cannot respawn a closed pool")
        old = self.executor
        if kill_workers:
            for pid in list((getattr(old, "_processes", None) or {})):
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - a broken pool may refuse politely
            pass
        self.executor = self._spawn_executor()
        self.respawns += 1

    # -- per-run coordination -------------------------------------------
    def begin_run(self, seed: float = float("-inf")) -> None:
        """Rearm the shared cells for one run (call under :attr:`lock`)."""
        self.incumbent.reset(seed)
        self.cursor.reset()

    def seed_for(self, key, build):
        """The cached parent-side warm-start seed for a model cache key.

        ``build`` runs at most once per key while the entry stays in the
        LRU — warm repeat calls skip both the parent's score-model build
        and the heuristic run that produce the seed.
        """
        with self._seed_lock:
            seed = self._seeds.get(key)
            if seed is not None:
                return seed
        seed = build()
        with self._seed_lock:
            cached = self._seeds.get(key)
            if cached is not None:  # lost a benign build race
                return cached
            self._seeds.put(key, seed)
        return seed

    # -- shared-memory arenas -------------------------------------------
    def arena_for(self, log: EventLog):
        """The cached :class:`ShmLogArena` for ``log`` (created once).

        Keyed by ``(id(log), generation)`` so appends invalidate; a
        weakref finalizer unlinks the segment when the log is collected,
        and the LRU cap unlinks the oldest segments under churn.
        """
        from repro.parallel.shm import ShmLogArena

        key = (id(log), log.generation)
        with self._arena_lock:
            arena = self._arenas.get(key)
            if arena is not None:
                return arena
        built = ShmLogArena.create(log)
        with self._arena_lock:
            arena = self._arenas.get(key)
            if arena is not None:  # lost a benign build race
                built.unlink()
                return arena
            evicted = self._arenas.put(key, built)
        for old in evicted:
            old.unlink()
        weakref.finalize(log, self._drop_arena, key)
        return built

    def _drop_arena(self, key) -> None:
        with self._arena_lock:
            arena = self._arenas.pop(key)
        if arena is not None:
            arena.unlink()

    def shm_bytes(self) -> int:
        """Total bytes currently mapped by cached arenas."""
        with self._arena_lock:
            return sum(a.size for a in self._arenas._entries.values())

    def pickle_token(self, log: EventLog) -> str:
        """A stable worker-cache token for ``log`` on the pickle path.

        The same live log keeps the same token (so warm workers hit
        their model cache); a finalizer retires the token when the log
        is collected, so a recycled ``id`` can never alias a stale one.
        """
        key = (id(log), log.generation)
        token = self._pickle_tokens.get(key)
        if token is None:
            self._token_serial += 1
            token = f"pickle-{os.getpid()}-{self._token_serial}"
            self._pickle_tokens[key] = token
            weakref.finalize(log, self._pickle_tokens.pop, key, None)
        return token

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the executor down and unlink every cached arena."""
        if self._closed:
            return
        self._closed = True
        self.executor.shutdown(wait=True, cancel_futures=True)
        with self._arena_lock:
            arenas = self._arenas.clear()
        for arena in arenas:
            arena.unlink()


# ----------------------------------------------------------------------
# The module-level warm pool
# ----------------------------------------------------------------------

_pool: WarmPool | None = None
_pool_pid: int | None = None
_pool_guard = threading.Lock()
_pool_stats = {"spawns": 0, "reuses": 0}


def get_warm_pool(workers: int) -> WarmPool:
    """The process-wide warm pool, created or grown to ``workers``.

    Lazily creates the pool on first use; later calls reuse it when it
    is live and large enough, and replace it (counting a fresh spawn)
    when it is closed, too small, or was inherited across a ``fork`` —
    an inherited executor's queues belong to the parent and must never
    be driven from the child.
    """
    global _pool, _pool_pid
    with _pool_guard:
        if _pool is not None and _pool_pid != os.getpid():
            # Forked child: drop the inherited reference without touching
            # the parent's executor.
            _pool = None
        if _pool is not None and not _pool.closed and _pool.workers >= workers:
            _pool_stats["reuses"] += 1
            return _pool
        stale = _pool
        _pool = None
        if stale is not None and not stale.closed:
            stale.close()
        pool = WarmPool(workers)
        _pool = pool
        _pool_pid = os.getpid()
        _pool_stats["spawns"] += 1
        return pool


def current_warm_pool() -> WarmPool | None:
    """The live module pool, or ``None`` (never creates one)."""
    with _pool_guard:
        if _pool is None or _pool.closed or _pool_pid != os.getpid():
            return None
        return _pool


def close_warm_pool() -> None:
    """Explicitly close the module pool (idempotent)."""
    global _pool
    with _pool_guard:
        pool = _pool
        _pool = None
    if pool is not None and _pool_pid == os.getpid():
        pool.close()


def warm_pool_stats() -> dict:
    """Spawn/reuse counters plus the live pool's shape, for probes/tests."""
    pool = current_warm_pool()
    return {
        "spawns": _pool_stats["spawns"],
        "reuses": _pool_stats["reuses"],
        "live": pool is not None,
        "workers": pool.workers if pool is not None else 0,
        "shm_bytes": pool.shm_bytes() if pool is not None else 0,
        "respawns": pool.respawns if pool is not None else 0,
    }
