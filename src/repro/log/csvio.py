"""CSV import/export for event logs.

The on-disk format is the conventional flat event table used by process
mining tools: one row per event occurrence with a case-id column and an
activity column, ordered within each case either by row order or by an
optional timestamp column.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.log.events import Trace
from repro.log.eventlog import EventLog


def read_csv(
    source: str | Path | io.TextIOBase,
    case_column: str = "case_id",
    activity_column: str = "activity",
    timestamp_column: str | None = None,
    name: str = "",
) -> EventLog:
    """Read an event log from a CSV event table.

    Rows are grouped by ``case_column``; within each case, events are
    ordered by ``timestamp_column`` when given (lexicographic or numeric
    sort on the raw string values, numeric when all values parse), else by
    the order rows appear in the file.  Cases appear in the log in order of
    first occurrence.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return read_csv(
                handle, case_column, activity_column, timestamp_column, name
            )

    reader = csv.DictReader(source)
    if reader.fieldnames is None:
        return EventLog([], name=name)
    for column in filter(None, (case_column, activity_column, timestamp_column)):
        if column not in reader.fieldnames:
            raise ValueError(f"missing column {column!r} in CSV header")

    cases: dict[str, list[tuple[str, str]]] = {}
    for row in reader:
        case_id = row[case_column]
        stamp = row[timestamp_column] if timestamp_column else ""
        cases.setdefault(case_id, []).append((stamp, row[activity_column]))

    traces = []
    for case_id, rows in cases.items():
        if timestamp_column:
            rows = _sorted_by_timestamp(rows)
        traces.append(Trace((activity for _, activity in rows), case_id=case_id))
    return EventLog(traces, name=name)


def _sorted_by_timestamp(
    rows: list[tuple[str, str]]
) -> list[tuple[str, str]]:
    """Stable sort by timestamp, numerically when every stamp parses."""
    try:
        return sorted(rows, key=lambda pair: float(pair[0]))
    except ValueError:
        return sorted(rows, key=lambda pair: pair[0])


def write_csv(
    log: EventLog,
    destination: str | Path | io.TextIOBase,
    case_column: str = "case_id",
    activity_column: str = "activity",
) -> None:
    """Write ``log`` as a flat CSV event table.

    Cases keep their ``case_id`` when set, else are numbered by position.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            write_csv(log, handle, case_column, activity_column)
            return

    writer = csv.writer(destination)
    writer.writerow([case_column, activity_column])
    for position, trace in enumerate(log):
        case_id = trace.case_id if trace.case_id is not None else str(position)
        for event in trace:
            writer.writerow([case_id, event])
