"""CSV import/export for event logs.

The on-disk format is the conventional flat event table used by process
mining tools: one row per event occurrence with a case-id column and an
activity column, ordered within each case either by row order or by an
optional timestamp column.

Malformed rows (missing case id or activity) raise a
:class:`~repro.log.errors.LogReadError` naming the offending file line
and case id; pass ``on_error="quarantine"`` to skip them instead and
report each into a :class:`~repro.resilience.quarantine.QuarantineStore`.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.log.errors import LogReadError
from repro.log.events import Trace
from repro.log.eventlog import EventLog

_ON_ERROR_MODES = ("raise", "quarantine")


def read_csv(
    source: str | Path | io.TextIOBase,
    case_column: str = "case_id",
    activity_column: str = "activity",
    timestamp_column: str | None = None,
    name: str = "",
    on_error: str = "raise",
    quarantine=None,
) -> EventLog:
    """Read an event log from a CSV event table.

    Rows are grouped by ``case_column``; within each case, events are
    ordered by ``timestamp_column`` when given (lexicographic or numeric
    sort on the raw string values, numeric when all values parse), else by
    the order rows appear in the file.  Cases appear in the log in order of
    first occurrence.

    A row with a missing/empty case id or activity raises
    :class:`LogReadError` naming the file line and case id.  With
    ``on_error="quarantine"`` the row is skipped instead; pass a
    :class:`~repro.resilience.quarantine.QuarantineStore` to collect the
    skips (one is created and discarded otherwise — use the stream layer
    if you only want counts).
    """
    if on_error not in _ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return read_csv(
                handle, case_column, activity_column, timestamp_column,
                name, on_error, quarantine,
            )
    if quarantine is None and on_error == "quarantine":
        from repro.resilience.quarantine import QuarantineStore

        quarantine = QuarantineStore()

    reader = csv.DictReader(source)
    if reader.fieldnames is None:
        return EventLog([], name=name)
    for column in filter(None, (case_column, activity_column, timestamp_column)):
        if column not in reader.fieldnames:
            raise LogReadError(f"missing column {column!r} in CSV header")

    cases: dict[str, list[tuple[str, str]]] = {}
    for row in reader:
        case_id = row.get(case_column)
        activity = row.get(activity_column)
        problem = None
        if not case_id:
            problem = f"missing case id in column {case_column!r}"
        elif not activity:
            problem = f"missing activity in column {activity_column!r}"
        if problem is not None:
            _bad_row(
                problem, reader.line_num, case_id, activity,
                on_error, quarantine,
            )
            continue
        stamp = row[timestamp_column] if timestamp_column else ""
        cases.setdefault(case_id, []).append((stamp, activity))

    traces = []
    for case_id, rows in cases.items():
        if timestamp_column:
            rows = _sorted_by_timestamp(rows)
        traces.append(Trace((activity for _, activity in rows), case_id=case_id))
    return EventLog(traces, name=name)


def _bad_row(problem, line_num, case_id, activity, on_error, quarantine):
    location = f"line {line_num}"
    if on_error == "raise":
        suffix = f" (case {case_id!r})" if case_id else ""
        raise LogReadError(
            f"{location}: {problem}{suffix}",
            location=location,
            case_id=case_id or None,
        )
    from repro.resilience.quarantine import QuarantineRecord, sanitize_events

    quarantine.add(
        QuarantineRecord(
            kind="row",
            reason=f"{location}: {problem}",
            case_id=case_id or None,
            events=sanitize_events([activity] if activity else []),
            source="csv",
        )
    )


def _sorted_by_timestamp(
    rows: list[tuple[str, str]]
) -> list[tuple[str, str]]:
    """Stable sort by timestamp, numerically when every stamp parses."""
    try:
        return sorted(rows, key=lambda pair: float(pair[0]))
    except ValueError:
        return sorted(rows, key=lambda pair: pair[0])


def write_csv(
    log: EventLog,
    destination: str | Path | io.TextIOBase,
    case_column: str = "case_id",
    activity_column: str = "activity",
) -> None:
    """Write ``log`` as a flat CSV event table.

    Cases keep their ``case_id`` when set, else are numbered by position.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            write_csv(log, handle, case_column, activity_column)
            return

    writer = csv.writer(destination)
    writer.writerow([case_column, activity_column])
    for position, trace in enumerate(log):
        case_id = trace.case_id if trace.case_id is not None else str(position)
        for event in trace:
            writer.writerow([case_id, event])
