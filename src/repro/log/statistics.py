"""Log characteristics, as reported in Table 3 of the paper.

For each dataset the paper reports the number of traces, the number of
distinct events (dependency-graph vertices), the number of dependency-graph
edges, and the number of patterns assigned on the log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.log.eventlog import EventLog


@dataclass(frozen=True)
class LogCharacteristics:
    """One row of Table 3."""

    name: str
    num_traces: int
    num_events: int
    num_edges: int
    num_patterns: int

    def as_row(self) -> tuple[str, int, int, int, int]:
        return (
            self.name,
            self.num_traces,
            self.num_events,
            self.num_edges,
            self.num_patterns,
        )


def characterize(
    log: EventLog, num_patterns: int = 0, name: str | None = None
) -> LogCharacteristics:
    """Compute the Table-3 characteristics of ``log``.

    ``num_patterns`` is supplied by the caller because patterns are an
    input to matching, not a property of the log itself.
    """
    return LogCharacteristics(
        name=name if name is not None else log.name,
        num_traces=len(log),
        num_events=len(log.alphabet()),
        num_edges=len(log.edges()),
        num_patterns=num_patterns,
    )
