"""Inverted trace index ``I_t`` (Section 3.2.3 of the paper).

For each event ``v`` the index stores the ids of traces containing ``v``.
Evaluating a pattern's frequency then only scans
``⋂_{v ∈ V(p)} I_t(v)`` instead of the whole log, which is the paper's
second index for accelerating normal-distance computation.

The index supports append-only logs: :meth:`TraceIndex.refresh` absorbs
traces appended to the wrapped log since the last sync (each new trace
contributes its postings exactly once — postings are monotone under
append).  Querying an index that has fallen behind its log raises
:class:`~repro.log.eventlog.StaleIndexError` rather than silently
answering for a shorter log.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence, Set as AbstractSet

from repro.log.events import Event
from repro.log.eventlog import EventLog, StaleIndexError


class TraceIndex:
    """Posting lists from events to the traces that contain them."""

    def __init__(self, log: EventLog):
        self._log = log
        self._postings: dict[Event, set[int]] = {}
        self._empty: frozenset[int] = frozenset()
        self._synced_traces = 0
        self._generation = log.generation
        self.refresh()

    @property
    def log(self) -> EventLog:
        return self._log

    @property
    def generation(self) -> int:
        """The log generation this index last synced with."""
        return self._generation

    def refresh(self) -> int:
        """Absorb traces appended since the last sync; return how many.

        This is the ``I_t`` delta-maintenance path: each committed trace
        is indexed exactly once, immediately after its append, and never
        rescanned.
        """
        traces = self._log.traces
        added = 0
        for trace_id in range(self._synced_traces, len(traces)):
            for event in traces[trace_id].alphabet():
                self._postings.setdefault(event, set()).add(trace_id)
            added += 1
        self._synced_traces = len(traces)
        self._generation = self._log.generation
        return added

    def _check_fresh(self) -> None:
        if self._log.generation != self._generation:
            raise StaleIndexError(
                f"trace index synced at generation {self._generation} but "
                f"log {self._log.name!r} is at generation "
                f"{self._log.generation}; call refresh() or rebuild"
            )

    def postings(self, event: Event) -> AbstractSet[int]:
        """Ids of traces containing ``event`` (empty set if unseen).

        The returned set is a live internal view; callers must not
        mutate it.
        """
        self._check_fresh()
        return self._postings.get(event, self._empty)

    def candidate_traces(self, events: Iterable[Event]) -> frozenset[int]:
        """Ids of traces containing *all* of ``events``.

        Intersects the posting lists smallest-first; an event with no
        postings short-circuits to the empty set.
        """
        self._check_fresh()
        lists = sorted(
            (self._postings.get(event, self._empty) for event in set(events)),
            key=len,
        )
        if not lists:
            return frozenset(range(len(self._log)))
        result = lists[0]
        for posting in lists[1:]:
            if not result:
                return self._empty
            result = result & posting
        return frozenset(result)

    def count_traces_with_any_substring(
        self, sequences: Iterable[Sequence[Event]]
    ) -> int:
        """Traces containing at least one of ``sequences`` as a substring.

        This is exactly the pattern-frequency primitive: ``sequences`` is
        the allowed-order set ``I(p)`` of a pattern, and a trace matches the
        pattern when some allowed order occurs contiguously (Definition 4).
        All sequences of a pattern share the same event set, so a single
        posting-list intersection covers every alternative.
        """
        needles = [tuple(sequence) for sequence in sequences]
        if not needles:
            return 0
        events = set(needles[0])
        for needle in needles[1:]:
            if set(needle) != events:
                raise ValueError(
                    "all sequences of a pattern must share one event set"
                )
        count = 0
        traces = self._log.traces
        for trace_id in self.candidate_traces(events):
            trace = traces[trace_id]
            if any(trace.contains_substring(needle) for needle in needles):
                count += 1
        return count
