"""Inverted trace index ``I_t`` (Section 3.2.3 of the paper).

For each event ``v`` the index stores the ids of traces containing ``v``.
Evaluating a pattern's frequency then only scans
``⋂_{v ∈ V(p)} I_t(v)`` instead of the whole log, which is the paper's
second index for accelerating normal-distance computation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.log.events import Event
from repro.log.eventlog import EventLog


class TraceIndex:
    """Posting lists from events to the traces that contain them."""

    def __init__(self, log: EventLog):
        self._log = log
        postings: dict[Event, set[int]] = {}
        for trace_id, trace in enumerate(log):
            for event in trace.alphabet():
                postings.setdefault(event, set()).add(trace_id)
        self._postings: dict[Event, frozenset[int]] = {
            event: frozenset(ids) for event, ids in postings.items()
        }
        self._empty: frozenset[int] = frozenset()

    @property
    def log(self) -> EventLog:
        return self._log

    def postings(self, event: Event) -> frozenset[int]:
        """Ids of traces containing ``event`` (empty set if unseen)."""
        return self._postings.get(event, self._empty)

    def candidate_traces(self, events: Iterable[Event]) -> frozenset[int]:
        """Ids of traces containing *all* of ``events``.

        Intersects the posting lists smallest-first; an event with no
        postings short-circuits to the empty set.
        """
        lists = sorted(
            (self.postings(event) for event in set(events)), key=len
        )
        if not lists:
            return frozenset(range(len(self._log)))
        result = lists[0]
        for posting in lists[1:]:
            if not result:
                return self._empty
            result = result & posting
        return result

    def count_traces_with_any_substring(
        self, sequences: Iterable[Sequence[Event]]
    ) -> int:
        """Traces containing at least one of ``sequences`` as a substring.

        This is exactly the pattern-frequency primitive: ``sequences`` is
        the allowed-order set ``I(p)`` of a pattern, and a trace matches the
        pattern when some allowed order occurs contiguously (Definition 4).
        All sequences of a pattern share the same event set, so a single
        posting-list intersection covers every alternative.
        """
        needles = [tuple(sequence) for sequence in sequences]
        if not needles:
            return 0
        events = set(needles[0])
        for needle in needles[1:]:
            if set(needle) != events:
                raise ValueError(
                    "all sequences of a pattern must share one event set"
                )
        count = 0
        traces = self._log.traces
        for trace_id in self.candidate_traces(events):
            trace = traces[trace_id]
            if any(trace.contains_substring(needle) for needle in needles):
                count += 1
        return count
