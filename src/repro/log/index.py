"""Inverted trace index ``I_t`` (Section 3.2.3 of the paper).

For each event ``v`` the index stores the ids of traces containing ``v``.
Evaluating a pattern's frequency then only scans
``⋂_{v ∈ V(p)} I_t(v)`` instead of the whole log, which is the paper's
second index for accelerating normal-distance computation.

Posting lists are stored as **big-int bitsets**: bit ``i`` of the posting
int for event ``v`` is set iff trace ``i`` contains ``v``.  Intersection
is then a chain of CPython-native ``&`` operations over machine words,
candidate counting is one ``int.bit_count()``, and delta maintenance
under append is a single set-bit per (event, new trace) — the same
append-only contract the previous set-backed representation had, so the
streaming delta layer is unaffected.

The index supports append-only logs: :meth:`TraceIndex.refresh` absorbs
traces appended to the wrapped log since the last sync (each new trace
contributes its postings exactly once — postings are monotone under
append).  Querying an index that has fallen behind its log raises
:class:`~repro.log.eventlog.StaleIndexError` rather than silently
answering for a shorter log.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.log.events import Event
from repro.log.eventlog import EventLog, StaleIndexError


def _decode_bits(bits: int) -> frozenset[int]:
    """The set-bit positions of ``bits`` as a frozen set."""
    positions = []
    while bits:
        low = bits & -bits
        positions.append(low.bit_length() - 1)
        bits ^= low
    return frozenset(positions)


class TraceIndex:
    """Posting lists from events to the traces that contain them."""

    def __init__(self, log: EventLog):
        self._log = log
        self._postings: dict[Event, int] = {}
        self._empty: frozenset[int] = frozenset()
        self._synced_traces = 0
        self._generation = log.generation
        self.refresh()

    @classmethod
    def from_postings(
        cls, log: EventLog, postings: dict[Event, int]
    ) -> "TraceIndex":
        """An index over ``log`` seeded with already-built posting bits.

        The shared-memory transport (:mod:`repro.parallel.shm`) ships
        posting bitsets alongside the traces so attaching workers skip
        the per-trace set-bit rescan a fresh index would pay.  The
        postings must describe exactly the committed traces of ``log``
        (the arena serializes both from one synced index, so this holds
        by construction); the index starts synced at the log's current
        generation and refreshes incrementally from there like any other.
        """
        index = cls.__new__(cls)
        index._log = log
        index._postings = {
            event: bits for event, bits in postings.items() if bits
        }
        index._empty = frozenset()
        index._synced_traces = len(log.traces)
        index._generation = log.generation
        return index

    def export_postings(self) -> dict[Event, int]:
        """A snapshot of the posting bitsets (event → bits), for export."""
        self._check_fresh()
        return dict(self._postings)

    @property
    def log(self) -> EventLog:
        return self._log

    @property
    def generation(self) -> int:
        """The log generation this index last synced with."""
        return self._generation

    def refresh(self) -> int:
        """Absorb traces appended since the last sync; return how many.

        This is the ``I_t`` delta-maintenance path: each committed trace
        is indexed exactly once, immediately after its append — one
        set-bit per distinct event — and never rescanned.
        """
        traces = self._log.traces
        postings = self._postings
        added = 0
        for trace_id in range(self._synced_traces, len(traces)):
            bit = 1 << trace_id
            for event in traces[trace_id].alphabet():
                postings[event] = postings.get(event, 0) | bit
            added += 1
        self._synced_traces = len(traces)
        self._generation = self._log.generation
        return added

    def _check_fresh(self) -> None:
        if self._log.generation != self._generation:
            raise StaleIndexError(
                f"trace index synced at generation {self._generation} but "
                f"log {self._log.name!r} is at generation "
                f"{self._log.generation}; call refresh() or rebuild"
            )

    def posting_bits(self, event: Event) -> int:
        """The posting list of ``event`` as a bitset (0 if unseen).

        Bit ``i`` is set iff trace ``i`` contains ``event``.  This is
        the fast-path accessor: ``&`` chains intersect, ``|`` unions,
        ``int.bit_count()`` counts.
        """
        self._check_fresh()
        return self._postings.get(event, 0)

    def postings(self, event: Event) -> frozenset[int]:
        """Ids of traces containing ``event`` (empty set if unseen).

        The returned set is an immutable snapshot decoded from the
        bitset; callers cannot corrupt the index through it.
        """
        self._check_fresh()
        bits = self._postings.get(event, 0)
        if not bits:
            return self._empty
        return _decode_bits(bits)

    def candidate_bits(self, events: Iterable[Event]) -> int:
        """Bitset of traces containing *all* of ``events``."""
        self._check_fresh()
        postings = self._postings
        result = -1
        for event in set(events):
            result &= postings.get(event, 0)
            if not result:
                return 0
        if result == -1:  # no events: every trace qualifies
            return (1 << len(self._log)) - 1
        return result

    def candidate_traces(self, events: Iterable[Event]) -> frozenset[int]:
        """Ids of traces containing *all* of ``events``.

        An ``&`` chain over the bitset posting lists; an event with no
        postings short-circuits to the empty set.
        """
        return _decode_bits(self.candidate_bits(events))

    def count_traces_with_any_substring(
        self, sequences: Iterable[Sequence[Event]]
    ) -> int:
        """Traces containing at least one of ``sequences`` as a substring.

        This is exactly the pattern-frequency primitive: ``sequences`` is
        the allowed-order set ``I(p)`` of a pattern, and a trace matches the
        pattern when some allowed order occurs contiguously (Definition 4).
        All sequences of a pattern share the same event set, so a single
        posting-list intersection covers every alternative.

        This is the *naive* per-order scan retained as the oracle;
        :class:`~repro.kernel.frequency.FrequencyKernel` answers the
        same query through bigram bitsets and Aho–Corasick automata.
        """
        needles = [tuple(sequence) for sequence in sequences]
        if not needles:
            return 0
        events = set(needles[0])
        for needle in needles[1:]:
            if set(needle) != events:
                raise ValueError(
                    "all sequences of a pattern must share one event set"
                )
        count = 0
        traces = self._log.traces
        candidates = self.candidate_bits(events)
        while candidates:
            low = candidates & -candidates
            trace = traces[low.bit_length() - 1]
            candidates ^= low
            if any(trace.contains_substring(needle) for needle in needles):
                count += 1
        return count
