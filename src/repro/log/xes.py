"""XES-subset import/export (pm4py substitute).

XES is the IEEE standard interchange format for event logs.  This module
implements the subset needed to round-trip the logs used in the paper's
experiments: ``<log>`` containing ``<trace>`` elements, each with an
optional ``concept:name`` string attribute (the case id) and ``<event>``
elements carrying a ``concept:name`` string attribute (the activity).

The reader is deliberately tolerant: unknown attributes and extensions are
ignored, events without a ``concept:name`` are skipped.  Structural
errors (wrong root, a ``concept:name`` attribute without a value) raise
a :class:`~repro.log.errors.LogReadError` naming the trace position and
case id; ``on_error="quarantine"`` downgrades them — and the silently
skipped nameless events — to records in a
:class:`~repro.resilience.quarantine.QuarantineStore`.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ElementTree
from pathlib import Path
from xml.sax.saxutils import quoteattr

from repro.log.errors import LogReadError
from repro.log.events import Trace
from repro.log.eventlog import EventLog

_CONCEPT_NAME = "concept:name"

_ON_ERROR_MODES = ("raise", "quarantine")


def read_xes(
    source: str | Path | io.TextIOBase,
    name: str = "",
    on_error: str = "raise",
    quarantine=None,
) -> EventLog:
    """Parse an XES document into an :class:`EventLog`.

    With ``on_error="quarantine"``, malformed traces (a ``concept:name``
    attribute without a value) are skipped into ``quarantine`` instead
    of raising, and every nameless event the tolerant reader drops is
    recorded there too.
    """
    if on_error not in _ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )
    if quarantine is None and on_error == "quarantine":
        from repro.resilience.quarantine import QuarantineStore

        quarantine = QuarantineStore()
    if isinstance(source, (str, Path)):
        tree = ElementTree.parse(source)
        root = tree.getroot()
    else:
        root = ElementTree.fromstring(source.read())
    if _local_name(root.tag) != "log":
        raise LogReadError(f"expected <log> root element, got <{root.tag}>")

    traces = []
    position = -1
    for trace_element in root:
        if _local_name(trace_element.tag) != "trace":
            continue
        position += 1
        case_id = None
        events = []
        problem = None
        event_index = -1
        for child in trace_element:
            local = _local_name(child.tag)
            if local == "string" and child.get("key") == _CONCEPT_NAME:
                case_id = child.get("value")
                if case_id is None:
                    problem = "concept:name attribute without a value"
                    break
            elif local == "event":
                event_index += 1
                activity = _event_name(child)
                if activity is not None:
                    events.append(activity)
                elif quarantine is not None:
                    _record_skip(
                        quarantine,
                        f"trace {position}: event {event_index} has no "
                        f"{_CONCEPT_NAME}",
                        case_id,
                    )
        if problem is not None:
            location = f"trace {position}"
            detail = f" (case {case_id!r})" if case_id else ""
            if on_error == "raise":
                raise LogReadError(
                    f"{location}: {problem}{detail}",
                    location=location,
                    case_id=case_id,
                )
            _record_skip(quarantine, f"{location}: {problem}", case_id)
            continue
        traces.append(Trace(events, case_id=case_id))
    return EventLog(traces, name=name)


def _record_skip(quarantine, reason: str, case_id: str | None) -> None:
    from repro.resilience.quarantine import QuarantineRecord

    quarantine.add(
        QuarantineRecord(
            kind="row",
            reason=reason,
            case_id=case_id,
            events=(),
            source="xes",
        )
    )


def _local_name(tag: str) -> str:
    """Strip an XML namespace from a tag name."""
    return tag.rsplit("}", 1)[-1]


def _event_name(event_element: ElementTree.Element) -> str | None:
    for attribute in event_element:
        if (
            _local_name(attribute.tag) == "string"
            and attribute.get("key") == _CONCEPT_NAME
        ):
            return attribute.get("value")
    return None


def write_xes(log: EventLog, destination: str | Path | io.TextIOBase) -> None:
    """Serialize ``log`` as an XES document."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            write_xes(log, handle)
            return

    destination.write('<?xml version="1.0" encoding="UTF-8"?>\n')
    destination.write('<log xes.version="1.0">\n')
    for position, trace in enumerate(log):
        destination.write("  <trace>\n")
        case_id = trace.case_id if trace.case_id is not None else str(position)
        destination.write(
            f'    <string key="concept:name" value={quoteattr(case_id)}/>\n'
        )
        for event in trace:
            destination.write("    <event>\n")
            destination.write(
                f'      <string key="concept:name" value={quoteattr(event)}/>\n'
            )
            destination.write("    </event>\n")
        destination.write("  </trace>\n")
    destination.write("</log>\n")
