"""XES-subset import/export (pm4py substitute).

XES is the IEEE standard interchange format for event logs.  This module
implements the subset needed to round-trip the logs used in the paper's
experiments: ``<log>`` containing ``<trace>`` elements, each with an
optional ``concept:name`` string attribute (the case id) and ``<event>``
elements carrying a ``concept:name`` string attribute (the activity).

The reader is deliberately tolerant: unknown attributes and extensions are
ignored, events without a ``concept:name`` are skipped.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ElementTree
from pathlib import Path
from xml.sax.saxutils import quoteattr

from repro.log.events import Trace
from repro.log.eventlog import EventLog

_CONCEPT_NAME = "concept:name"


def read_xes(source: str | Path | io.TextIOBase, name: str = "") -> EventLog:
    """Parse an XES document into an :class:`EventLog`."""
    if isinstance(source, (str, Path)):
        tree = ElementTree.parse(source)
        root = tree.getroot()
    else:
        root = ElementTree.fromstring(source.read())
    if _local_name(root.tag) != "log":
        raise ValueError(f"expected <log> root element, got <{root.tag}>")

    traces = []
    for trace_element in root:
        if _local_name(trace_element.tag) != "trace":
            continue
        case_id = None
        events = []
        for child in trace_element:
            local = _local_name(child.tag)
            if local == "string" and child.get("key") == _CONCEPT_NAME:
                case_id = child.get("value")
            elif local == "event":
                activity = _event_name(child)
                if activity is not None:
                    events.append(activity)
        traces.append(Trace(events, case_id=case_id))
    return EventLog(traces, name=name)


def _local_name(tag: str) -> str:
    """Strip an XML namespace from a tag name."""
    return tag.rsplit("}", 1)[-1]


def _event_name(event_element: ElementTree.Element) -> str | None:
    for attribute in event_element:
        if (
            _local_name(attribute.tag) == "string"
            and attribute.get("key") == _CONCEPT_NAME
        ):
            return attribute.get("value")
    return None


def write_xes(log: EventLog, destination: str | Path | io.TextIOBase) -> None:
    """Serialize ``log`` as an XES document."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            write_xes(log, handle)
            return

    destination.write('<?xml version="1.0" encoding="UTF-8"?>\n')
    destination.write('<log xes.version="1.0">\n')
    for position, trace in enumerate(log):
        destination.write("  <trace>\n")
        case_id = trace.case_id if trace.case_id is not None else str(position)
        destination.write(
            f'    <string key="concept:name" value={quoteattr(case_id)}/>\n'
        )
        for event in trace:
            destination.write("    <event>\n")
            destination.write(
                f'      <string key="concept:name" value={quoteattr(event)}/>\n'
            )
            destination.write("    </event>\n")
        destination.write("  </trace>\n")
    destination.write("</log>\n")
