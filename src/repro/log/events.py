"""Events and traces.

An *event* is identified by its name (a string); the paper's setting is
"uninterpreted" matching, so the name carries no semantics beyond identity.
A *trace* is a finite sequence of events ordered by occurrence, recording
one case (e.g. one order flowing through an ERP system).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

#: Events are plain strings throughout the library.  The alias exists so
#: signatures read ``Event`` rather than ``str`` where the distinction helps.
Event = str


class Trace:
    """An immutable, hashable sequence of events for one case.

    Parameters
    ----------
    events:
        The events of the case in occurrence order.
    case_id:
        Optional identifier of the case this trace records.  Two traces
        with the same events but different case ids compare equal: identity
        of a trace, for matching purposes, is its event sequence.
    """

    __slots__ = ("_events", "case_id")

    def __init__(self, events: Iterable[Event], case_id: str | None = None):
        self._events: tuple[Event, ...] = tuple(events)
        self.case_id = case_id
        for event in self._events:
            if not isinstance(event, str):
                raise TypeError(f"events must be strings, got {event!r}")

    @property
    def events(self) -> tuple[Event, ...]:
        """The events of the trace, in order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def __contains__(self, event: object) -> bool:
        return event in self._events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Trace):
            return self._events == other._events
        if isinstance(other, tuple):
            return self._events == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        inner = ", ".join(self._events)
        return f"Trace(<{inner}>)"

    def alphabet(self) -> frozenset[Event]:
        """The set of distinct events occurring in this trace."""
        return frozenset(self._events)

    def project(self, keep: Iterable[Event]) -> "Trace":
        """Return a copy with only the events in ``keep``, order preserved.

        This is the projection used by the paper's experiments when an
        "event set with size x is determined by projecting the first x
        events": events outside the subset are dropped from every trace.
        """
        keep_set = frozenset(keep)
        return Trace(
            (event for event in self._events if event in keep_set),
            case_id=self.case_id,
        )

    def rename(self, mapping: dict[Event, Event]) -> "Trace":
        """Return a copy with events renamed through ``mapping``.

        Events absent from the mapping are kept unchanged.
        """
        return Trace(
            (mapping.get(event, event) for event in self._events),
            case_id=self.case_id,
        )

    def contains_substring(self, needle: Sequence[Event]) -> bool:
        """Whether ``needle`` occurs as a *contiguous* subsequence.

        Pattern instances must appear as substrings of the trace
        (Definition 4 in the paper); an empty needle trivially occurs.
        """
        needle = tuple(needle)
        size = len(needle)
        if size == 0:
            return True
        if size > len(self._events):
            return False
        events = self._events
        first = needle[0]
        for start in range(len(events) - size + 1):
            if events[start] == first and events[start:start + size] == needle:
                return True
        return False
