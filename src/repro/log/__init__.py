"""Event-log substrate: traces, logs, I/O, indices and statistics.

This package provides the data model the rest of the library is built on.
An :class:`~repro.log.eventlog.EventLog` is a collection of
:class:`~repro.log.events.Trace` objects, each an ordered sequence of event
names.  It plays the role pm4py-style logs play in the paper's experiments:
logs can be read from and written to CSV (`repro.log.csvio`) and an XES
subset (`repro.log.xes`), projected onto event or trace subsets, and indexed
for fast pattern-frequency evaluation (`repro.log.index`).
"""

from repro.log.events import Event, Trace
from repro.log.eventlog import EventLog, StaleIndexError
from repro.log.index import TraceIndex
from repro.log.statistics import LogCharacteristics, characterize

__all__ = [
    "Event",
    "Trace",
    "EventLog",
    "StaleIndexError",
    "TraceIndex",
    "LogCharacteristics",
    "characterize",
]
