"""Event logs: collections of traces with frequency statistics.

The :class:`EventLog` is the central substrate type.  It owns the trace
collection and exposes exactly the statistics the matching algorithms need:

* ``vertex_frequency(v)`` — fraction of traces containing event ``v``
  (Definition 1, vertex labels);
* ``edge_frequency(u, v)`` — fraction of traces where ``u`` is immediately
  followed by ``v`` at least once (Definition 1, edge labels);
* projections onto event subsets and trace prefixes, used by the paper's
  experiment sweeps over "# of events" and "# of traces".

Logs are *append-only*: batch workflows construct a log once and never
touch it again (the historical regime), while the streaming subsystem
(:mod:`repro.stream`) grows a log one committed trace at a time through
:meth:`EventLog.append_trace`.  Appending maintains the alphabet and the
vertex/edge counts incrementally — counts are monotone under append, so a
new trace only ever *adds* to them — and bumps a :attr:`generation`
counter.  Derived structures (the ``I_t`` trace index, frequency
evaluators) record the generation they were built against and fail loudly
with :class:`StaleIndexError` when used after the log has grown, instead
of silently returning frequencies for a log that no longer exists.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from repro.log.events import Event, Trace


class StaleIndexError(RuntimeError):
    """A derived index/cache was used after its log gained new traces.

    Consumers that can catch up incrementally expose a ``refresh()``
    method; everything else must be rebuilt from a fresh snapshot.
    """


class EventLog:
    """An append-only collection of traces.

    Parameters
    ----------
    traces:
        The traces of the log.  Iterables of events are promoted to
        :class:`Trace`.
    name:
        Optional human-readable log name (used in reports).
    """

    def __init__(self, traces: Iterable[Trace | Sequence[Event]], name: str = ""):
        promoted: list[Trace] = []
        for trace in traces:
            if not isinstance(trace, Trace):
                trace = Trace(trace)
            promoted.append(trace)
        self._traces: list[Trace] = promoted
        self._traces_view: tuple[Trace, ...] | None = None
        self._generation = 0
        self.name = name
        self._alphabet: frozenset[Event] | None = None
        self._vertex_counts: Counter[Event] | None = None
        self._edge_counts: Counter[tuple[Event, Event]] | None = None
        self._interner = None  # lazy repro.kernel.interner.EventInterner

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def traces(self) -> tuple[Trace, ...]:
        if self._traces_view is None:
            self._traces_view = tuple(self._traces)
        return self._traces_view

    @property
    def generation(self) -> int:
        """Monotone mutation counter; bumped by every committed append."""
        return self._generation

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    def __getitem__(self, index):
        return self._traces[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventLog):
            return self._traces == other._traces
        return NotImplemented

    def __hash__(self) -> int:
        # Hashing is only meaningful for logs used as frozen values (the
        # batch regime); a log mutated after being hashed violates the
        # usual dict-key contract exactly like any mutated Python object.
        return hash(self.traces)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"EventLog({len(self._traces)} traces{label})"

    # ------------------------------------------------------------------
    # Append path (streaming ingestion)
    # ------------------------------------------------------------------
    def append_trace(self, trace: Trace | Sequence[Event]) -> int:
        """Append one committed trace, returning its trace id.

        Statistics already materialized (alphabet, vertex/edge counts)
        are updated incrementally — under append they only gain, never
        lose — and :attr:`generation` is bumped so stale derived indices
        fail loudly.
        """
        if not isinstance(trace, Trace):
            trace = Trace(trace)
        if len(trace) == 0:
            raise ValueError("cannot append an empty trace")
        trace_id = len(self._traces)
        self._traces.append(trace)
        self._traces_view = None
        self._generation += 1
        if self._alphabet is not None:
            self._alphabet |= trace.alphabet()
        if self._vertex_counts is not None:
            assert self._edge_counts is not None
            events = trace.events
            self._vertex_counts.update(set(events))
            self._edge_counts.update(
                {(events[i], events[i + 1]) for i in range(len(events) - 1)}
            )
        if self._interner is not None:
            self._interner.absorb(trace.events)
        return trace_id

    # ------------------------------------------------------------------
    # Interning (the repro.kernel fast path)
    # ------------------------------------------------------------------
    def interner(self):
        """The log's :class:`~repro.kernel.interner.EventInterner`.

        Built lazily over the committed traces on first access; once
        materialized, :meth:`append_trace` keeps it synced in O(|trace|)
        exactly like the alphabet and vertex/edge counts.  Dense ids are
        assigned in first-appearance order and never change, so derived
        structures (bitsets, automata) stay valid as the log grows.
        """
        if self._interner is None:
            # Local import: repro.kernel sits above the log substrate.
            from repro.kernel.interner import EventInterner

            interner = EventInterner()
            for trace in self._traces:
                interner.absorb(trace.events)
            self._interner = interner
        return self._interner

    def attach_interner(self, interner) -> None:
        """Adopt a pre-built interner covering exactly this log's traces.

        Used by the shared-memory transport to rebuild a log without
        re-interning: the arena ships the dense id table and interned
        traces, and the rebuilt interner is attached here.  Subsequent
        :meth:`append_trace` calls keep it synced as usual.
        """
        if self._interner is not None:
            raise ValueError("log already has an interner")
        if interner.num_traces != len(self._traces):
            raise ValueError(
                f"interner covers {interner.num_traces} traces but the "
                f"log has {len(self._traces)}"
            )
        self._interner = interner

    # ------------------------------------------------------------------
    # Alphabet and frequencies
    # ------------------------------------------------------------------
    def alphabet(self) -> frozenset[Event]:
        """The distinct events appearing anywhere in the log."""
        if self._alphabet is None:
            events: set[Event] = set()
            for trace in self._traces:
                events.update(trace.events)
            self._alphabet = frozenset(events)
        return self._alphabet

    def events_in_first_appearance_order(self) -> list[Event]:
        """Distinct events ordered by first appearance in the log.

        The paper's sweeps select "the first x events appearing in the
        dataset"; this is that ordering.
        """
        seen: dict[Event, None] = {}
        for trace in self._traces:
            for event in trace:
                if event not in seen:
                    seen[event] = None
        return list(seen)

    def ensure_statistics(self) -> None:
        """Materialize the vertex/edge counts now.

        Once materialized, :meth:`append_trace` maintains them
        incrementally; streaming consumers call this up-front so every
        later append is O(|trace|) instead of deferring a full recount.
        """
        self._ensure_counts()
        self.alphabet()

    def _ensure_counts(self) -> None:
        if self._vertex_counts is not None:
            return
        vertex_counts: Counter[Event] = Counter()
        edge_counts: Counter[tuple[Event, Event]] = Counter()
        for trace in self._traces:
            events = trace.events
            vertex_counts.update(set(events))
            pairs = {
                (events[i], events[i + 1]) for i in range(len(events) - 1)
            }
            edge_counts.update(pairs)
        self._vertex_counts = vertex_counts
        self._edge_counts = edge_counts

    def vertex_count(self, event: Event) -> int:
        """Number of traces containing ``event`` at least once."""
        self._ensure_counts()
        assert self._vertex_counts is not None
        return self._vertex_counts[event]

    def edge_count(self, source: Event, target: Event) -> int:
        """Number of traces where ``source`` immediately precedes ``target``."""
        self._ensure_counts()
        assert self._edge_counts is not None
        return self._edge_counts[(source, target)]

    def vertex_frequency(self, event: Event) -> float:
        """Normalized frequency of ``event`` (Definition 1)."""
        if not self._traces:
            return 0.0
        return self.vertex_count(event) / len(self._traces)

    def edge_frequency(self, source: Event, target: Event) -> float:
        """Normalized frequency of the consecutive pair (Definition 1)."""
        if not self._traces:
            return 0.0
        return self.edge_count(source, target) / len(self._traces)

    def edges(self) -> list[tuple[Event, Event]]:
        """All consecutive pairs with non-zero frequency."""
        self._ensure_counts()
        assert self._edge_counts is not None
        return sorted(self._edge_counts)

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def project_events(self, keep: Iterable[Event]) -> "EventLog":
        """Project every trace onto the event subset ``keep``.

        Traces that become empty are dropped so that ``len(log)`` keeps
        denoting the number of non-trivial cases.
        """
        keep_set = frozenset(keep)
        projected = [trace.project(keep_set) for trace in self._traces]
        return EventLog(
            [trace for trace in projected if len(trace) > 0],
            name=self.name,
        )

    def take_traces(self, count: int) -> "EventLog":
        """The sub-log of the first ``count`` traces."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return EventLog(self._traces[:count], name=self.name)

    def rename_events(self, mapping: dict[Event, Event]) -> "EventLog":
        """A copy of the log with events renamed through ``mapping``."""
        return EventLog(
            [trace.rename(mapping) for trace in self._traces],
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Trace-level queries
    # ------------------------------------------------------------------
    def count_traces_with_substring(self, needle: Sequence[Event]) -> int:
        """Number of traces containing ``needle`` as a contiguous run."""
        needle = tuple(needle)
        return sum(1 for trace in self._traces if trace.contains_substring(needle))

    def variant_counts(self) -> Counter[tuple[Event, ...]]:
        """Multiplicity of each distinct trace (process-mining "variants")."""
        return Counter(trace.events for trace in self._traces)
