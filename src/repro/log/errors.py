"""Typed errors for the log I/O layer.

Import errors always name the offending location — file line or row
number, trace position, case id — because "invalid CSV" is useless when
the file has a million rows.  Subclassing :class:`ValueError` keeps
historical ``except ValueError`` call sites working.
"""

from __future__ import annotations


class LogReadError(ValueError):
    """A malformed row/trace encountered while reading an event log.

    Attributes
    ----------
    location:
        Human-readable locus — ``"line 42"`` for CSV (physical file
        line, as counted by the csv reader), ``"trace 3"`` for XES.
    case_id:
        The case the offending record belongs to, when identifiable.
    """

    def __init__(self, message: str, location: str | None = None,
                 case_id: str | None = None):
        super().__init__(message)
        self.location = location
        self.case_id = case_id
