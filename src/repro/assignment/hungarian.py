"""Kuhn–Munkres (Hungarian) algorithm for maximum-weight assignment.

From-scratch ``O(n³)`` implementation over plain Python lists.  The
baselines (Vertex, Iterative, Entropy-only) all reduce to "pick the
injective mapping maximizing a pairwise similarity sum", which is exactly
this problem; it also serves as the independent oracle for the
Proposition 6 optimality tests of the advanced heuristic.

Rectangular inputs are padded internally with zero-weight entries; padded
pairs are omitted from the returned assignment.
"""

from __future__ import annotations

from collections.abc import Sequence

_INFINITY = float("inf")


def max_weight_assignment(
    weights: Sequence[Sequence[float]],
) -> tuple[dict[int, int], float]:
    """Solve the maximum-weight assignment problem.

    Parameters
    ----------
    weights:
        ``weights[i][j]`` is the benefit of assigning row ``i`` to column
        ``j``.  Rows/columns may differ in count.

    Returns
    -------
    A pair ``(assignment, total)`` where ``assignment`` maps row indices
    to column indices covering ``min(#rows, #cols)`` pairs, and ``total``
    is the summed weight of those pairs.
    """
    num_rows = len(weights)
    num_cols = len(weights[0]) if num_rows else 0
    for row in weights:
        if len(row) != num_cols:
            raise ValueError("weight matrix must be rectangular")
    if num_rows == 0 or num_cols == 0:
        return {}, 0.0

    size = max(num_rows, num_cols)
    # Minimization form on the padded square matrix: cost = -weight.
    cost = [
        [
            -weights[i][j] if i < num_rows and j < num_cols else 0.0
            for j in range(size)
        ]
        for i in range(size)
    ]

    # Classic O(n³) shortest-augmenting-path Hungarian with potentials.
    # Arrays are 1-indexed with a virtual 0 row/column, following the
    # standard formulation (e-maxx); way[j] tracks the augmenting path.
    potentials_u = [0.0] * (size + 1)
    potentials_v = [0.0] * (size + 1)
    matched_row = [0] * (size + 1)  # matched_row[j] = row assigned to col j
    way = [0] * (size + 1)

    for i in range(1, size + 1):
        matched_row[0] = i
        current_col = 0
        min_values = [_INFINITY] * (size + 1)
        used = [False] * (size + 1)
        while True:
            used[current_col] = True
            row = matched_row[current_col]
            delta = _INFINITY
            next_col = 0
            for j in range(1, size + 1):
                if used[j]:
                    continue
                reduced = (
                    cost[row - 1][j - 1]
                    - potentials_u[row]
                    - potentials_v[j]
                )
                if reduced < min_values[j]:
                    min_values[j] = reduced
                    way[j] = current_col
                if min_values[j] < delta:
                    delta = min_values[j]
                    next_col = j
            for j in range(size + 1):
                if used[j]:
                    potentials_u[matched_row[j]] += delta
                    potentials_v[j] -= delta
                else:
                    min_values[j] -= delta
            current_col = next_col
            if matched_row[current_col] == 0:
                break
        while current_col != 0:
            previous = way[current_col]
            matched_row[current_col] = matched_row[previous]
            current_col = previous

    assignment: dict[int, int] = {}
    total = 0.0
    for j in range(1, size + 1):
        i = matched_row[j]
        if 1 <= i <= num_rows and j <= num_cols:
            assignment[i - 1] = j - 1
            total += weights[i - 1][j - 1]

    # Rectangular padding may have matched real rows to padded columns
    # (or vice versa); keep only the min(num_rows, num_cols) best real
    # pairs the square solution selected.
    return assignment, total
