"""Assignment-problem substrate (Kuhn–Munkres)."""

from repro.assignment.hungarian import max_weight_assignment

__all__ = ["max_weight_assignment"]
