"""Simulated ERP order-processing dataset (substitute for the paper's
proprietary bus-manufacturer logs).

Two departments run the *same* order-processing workflow on independent
systems.  After an order is received, three back-office threads run
concurrently — billing (payment, then invoicing), logistics (inventory
check, then scheduling) and production — and their events interleave
freely in the log, exactly the kind of concurrency that makes the paper's
real dependency graph so dense (57 edges over 11 events).  Afterwards
quality check and packaging run as a two-step parallel block, one of two
shipping modes fires, and the order closes.

In this regime individual vertex frequencies are mostly 1.0 and the many
interleaving edges carry weak, noisy signals — the paper's Example 1
situation — while the three complex patterns measure *contiguity* of
multi-event runs (billing chain uninterrupted, production finishing right
before the QC/packaging block, the standard shipping tail), which remains
discriminative.  The second department's log uses opaque abbreviated codes
and drifted routing habits; light logging noise (out-of-order writes,
missed events) adds the real-data texture.

Scale matches Table 3's real dataset: 11 events, 3,000 traces, 3 complex
patterns, a dependency graph with roughly half of all possible edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapping import Mapping
from repro.datagen.noise import perturb_log
from repro.datagen.obfuscate import opaque_names
from repro.datagen.processtree import (
    Choice,
    Interleave,
    Leaf,
    Optional,
    Parallel,
    Sequence,
    simulate_log,
)
from repro.datagen.task import MatchingTask
from repro.patterns.ast import and_, seq

#: The 11 activities of the order-processing workflow (department 1 names).
ACTIVITIES = (
    "Receive_Order",
    "Payment",
    "Invoice",
    "Check_Inventory",
    "Schedule",
    "Produce",
    "Quality_Check",
    "Package",
    "Ship_Goods",
    "Express_Ship",
    "Close_Order",
)


@dataclass(frozen=True)
class RoutingProfile:
    """One department's routing habits.

    The optional-step probabilities spread the vertex frequencies over a
    wide range — the texture of real ERP logs, where many steps are
    skipped for some orders.  Events sharing frequency 1.0
    (Receive_Order, Payment, Check_Inventory, Package) remain
    vertex-indistinguishable and need edge/pattern evidence.
    """

    #: Interleaving weights of the (billing, logistics, production)
    #: threads — a heavier thread tends to run its next step earlier.
    thread_weights: tuple[float, float, float]
    #: Weight of Quality_Check running before Package (vs 1.0).
    qc_first_weight: float
    #: Probability an invoice is issued (billing thread's second step).
    invoice_probability: float
    #: Probability scheduling happens (logistics thread's second step).
    schedule_probability: float
    #: Probability the order needs production (vs make-to-stock).
    produce_probability: float
    #: Probability a quality check is performed.
    qc_probability: float
    #: Probability of standard shipping (vs express).
    ship_goods_probability: float
    #: Probability the closing step gets logged.
    close_probability: float


#: Department 1 habits: billing tends to lead, production lags.
DEPARTMENT_1 = RoutingProfile(
    thread_weights=(1.35, 1.0, 0.80),
    qc_first_weight=1.30,
    invoice_probability=0.75,
    schedule_probability=0.85,
    produce_probability=0.90,
    qc_probability=0.70,
    ship_goods_probability=0.60,
    close_probability=0.95,
)

#: Department 2 keeps the *direction* of every preference (the truth stays
#: identifiable) but different magnitudes, weakening each individual
#: vertex/edge signal.
DEPARTMENT_2 = RoutingProfile(
    thread_weights=(1.60, 1.0, 0.70),
    qc_first_weight=1.50,
    invoice_probability=0.68,
    schedule_probability=0.80,
    produce_probability=0.86,
    qc_probability=0.64,
    ship_goods_probability=0.53,
    close_probability=0.93,
)


def _interpolate(
    profile_1: RoutingProfile, profile_2: RoutingProfile, amount: float
) -> RoutingProfile:
    """Blend ``profile_2`` toward ``profile_1`` (amount 0 → identical)."""

    def mix(a: float, b: float) -> float:
        return a + amount * (b - a)

    return RoutingProfile(
        thread_weights=tuple(
            mix(a, b)
            for a, b in zip(profile_1.thread_weights, profile_2.thread_weights)
        ),
        qc_first_weight=mix(
            profile_1.qc_first_weight, profile_2.qc_first_weight
        ),
        invoice_probability=mix(
            profile_1.invoice_probability, profile_2.invoice_probability
        ),
        schedule_probability=mix(
            profile_1.schedule_probability, profile_2.schedule_probability
        ),
        produce_probability=mix(
            profile_1.produce_probability, profile_2.produce_probability
        ),
        qc_probability=mix(profile_1.qc_probability, profile_2.qc_probability),
        ship_goods_probability=mix(
            profile_1.ship_goods_probability, profile_2.ship_goods_probability
        ),
        close_probability=mix(
            profile_1.close_probability, profile_2.close_probability
        ),
    )


def _order_process(profile: RoutingProfile):
    """The order-processing tree under the given routing profile."""
    return Sequence(
        [
            Leaf("Receive_Order"),
            Interleave(
                [
                    Sequence(
                        [
                            Leaf("Payment"),
                            Optional(Leaf("Invoice"), profile.invoice_probability),
                        ]
                    ),
                    Sequence(
                        [
                            Leaf("Check_Inventory"),
                            Optional(
                                Leaf("Schedule"), profile.schedule_probability
                            ),
                        ]
                    ),
                    Optional(Leaf("Produce"), profile.produce_probability),
                ],
                weights=list(profile.thread_weights),
            ),
            Parallel(
                [
                    Optional(Leaf("Quality_Check"), profile.qc_probability),
                    Leaf("Package"),
                ],
                weights=[profile.qc_first_weight, 1.0],
            ),
            Choice(
                [Leaf("Ship_Goods"), Leaf("Express_Ship")],
                weights=[
                    profile.ship_goods_probability,
                    1.0 - profile.ship_goods_probability,
                ],
            ),
            Optional(Leaf("Close_Order"), profile.close_probability),
        ]
    )


def generate_reallike(
    num_traces: int = 3000,
    seed: int = 7,
    heterogeneity: float = 1.0,
    swap_noise: float = 0.04,
    drop_noise: float = 0.01,
) -> MatchingTask:
    """Generate the simulated real dataset.

    Parameters
    ----------
    num_traces:
        Traces per log (the paper's real logs have 3,000).
    seed:
        Master seed; both logs and the renaming derive from it.
    heterogeneity:
        How far department 2's routing diverges from department 1's
        (0 makes the logs statistically identical up to sampling noise).
    swap_noise, drop_noise:
        Logging-noise rates (see :mod:`repro.datagen.noise`).
    """
    profile_2 = _interpolate(DEPARTMENT_1, DEPARTMENT_2, heterogeneity)
    log_1 = simulate_log(
        _order_process(DEPARTMENT_1), num_traces, seed=seed, name="department-1"
    )
    renaming = opaque_names(ACTIVITIES, seed=seed + 1)
    log_2 = simulate_log(
        _order_process(profile_2), num_traces, seed=seed + 2, name="department-2"
    ).rename_events(renaming)
    log_1 = perturb_log(
        log_1, swap_rate=swap_noise, drop_rate=drop_noise, seed=seed + 3
    )
    log_2 = perturb_log(
        log_2, swap_rate=swap_noise, drop_rate=drop_noise, seed=seed + 4
    )

    patterns = (
        # The billing thread starting uninterrupted right after intake:
        # order received, payment, invoice as one contiguous run.
        seq("Receive_Order", "Payment", "Invoice"),
        # Production finishing immediately before the QC/packaging block
        # (in either internal order).
        seq("Produce", and_("Quality_Check", "Package")),
        # The standard-shipping tail out of the QC/packaging block.
        seq(and_("Quality_Check", "Package"), "Ship_Goods", "Close_Order"),
    )

    return MatchingTask(
        name="reallike",
        log_1=log_1,
        log_2=log_2,
        patterns=patterns,
        truth=Mapping(renaming),
    )
