"""Workload generation: process trees, paper datasets, obfuscation.

The paper evaluates on (1) proprietary ERP logs from two departments of a
bus manufacturer, (2) a larger synthetic log built by repeating Figure 1's
structure, and (3) purely random logs.  This package synthesizes all
three: a small process-tree simulator (`repro.datagen.processtree`) plays
the role of the source information systems, and the dataset builders
(`reallike`, `synthetic`, `random_logs`) produce matched log pairs with
known ground truth and paper-style pattern sets.
"""

from repro.datagen.processtree import (
    Choice,
    Leaf,
    Loop,
    Optional,
    Parallel,
    ProcessTree,
    Sequence,
    simulate_log,
)
from repro.datagen.largevocab import generate_largevocab
from repro.datagen.random_logs import generate_random_pair
from repro.datagen.reallike import generate_reallike
from repro.datagen.synthetic import generate_synthetic
from repro.datagen.task import MatchingTask

__all__ = [
    "Choice",
    "Leaf",
    "Loop",
    "MatchingTask",
    "Optional",
    "Parallel",
    "ProcessTree",
    "Sequence",
    "generate_largevocab",
    "generate_random_pair",
    "generate_reallike",
    "generate_synthetic",
    "simulate_log",
]
