"""Process-tree workflow simulator.

The source systems of the paper (ERP order processing) are simulated by a
small block-structured process model, the standard abstraction in process
mining.  A :class:`ProcessTree` is built from:

* :class:`Leaf` — execute one activity;
* :class:`Sequence` — children in order;
* :class:`Parallel` — children as contiguous blocks in a sampled order
  (matching the AND pattern semantics: block permutations, no
  interleaving); per-child weights bias which block tends to run first;
* :class:`Choice` — exactly one child, sampled by weight;
* :class:`Optional` — child with some probability, else nothing;
* :class:`Loop` — child once, then again with a continuation probability.

``simulate_log`` samples traces into an :class:`~repro.log.eventlog.EventLog`.
Simulation is deterministic given the seed.
"""

from __future__ import annotations

import random
from collections.abc import Sequence as SequenceABC

from repro.log.events import Event, Trace
from repro.log.eventlog import EventLog


class ProcessTree:
    """Base class of process-tree nodes."""

    def sample(self, rng: random.Random) -> list[Event]:
        """One execution of this node as a list of events."""
        raise NotImplementedError

    def activities(self) -> set[Event]:
        """All activities that may occur under this node."""
        raise NotImplementedError


class Leaf(ProcessTree):
    """A single activity."""

    def __init__(self, activity: Event):
        self.activity = activity

    def sample(self, rng: random.Random) -> list[Event]:
        return [self.activity]

    def activities(self) -> set[Event]:
        return {self.activity}

    def __repr__(self) -> str:
        return f"Leaf({self.activity})"


class Sequence(ProcessTree):
    """Children execute in the given order."""

    def __init__(self, children: SequenceABC[ProcessTree]):
        self.children = list(children)

    def sample(self, rng: random.Random) -> list[Event]:
        events: list[Event] = []
        for child in self.children:
            events.extend(child.sample(rng))
        return events

    def activities(self) -> set[Event]:
        collected: set[Event] = set()
        for child in self.children:
            collected |= child.activities()
        return collected

    def __repr__(self) -> str:
        return f"Sequence({self.children})"


class Parallel(ProcessTree):
    """Children execute as contiguous blocks in a sampled order.

    ``weights`` bias a weighted random permutation: the next block is
    drawn among the remaining children proportionally to its weight, so a
    heavier child tends to run earlier.  Uniform when omitted.  These
    weights are how the generators shape *edge* frequencies (which order
    is more common) without touching *vertex* frequencies.
    """

    def __init__(
        self,
        children: SequenceABC[ProcessTree],
        weights: SequenceABC[float] | None = None,
    ):
        self.children = list(children)
        if weights is not None and len(weights) != len(self.children):
            raise ValueError("one weight per child required")
        self.weights = list(weights) if weights is not None else None

    def sample(self, rng: random.Random) -> list[Event]:
        remaining = list(range(len(self.children)))
        weights = (
            list(self.weights) if self.weights is not None
            else [1.0] * len(self.children)
        )
        events: list[Event] = []
        while remaining:
            chosen = rng.choices(
                range(len(remaining)),
                weights=[weights[i] for i in remaining],
            )[0]
            index = remaining.pop(chosen)
            events.extend(self.children[index].sample(rng))
        return events

    def activities(self) -> set[Event]:
        collected: set[Event] = set()
        for child in self.children:
            collected |= child.activities()
        return collected

    def __repr__(self) -> str:
        return f"Parallel({self.children})"


class Interleave(ProcessTree):
    """True concurrency: children's event streams are randomly merged.

    Unlike :class:`Parallel` (contiguous blocks in some order), the
    children here execute simultaneously and their events interleave:
    each child's internal order is preserved, but any shuffle of the
    streams can occur.  The next event is drawn among children that still
    have events pending, proportionally to their weights — a heavier
    child tends to run earlier.

    This is what makes dependency graphs dense and pairwise edge signals
    weak (the texture of the paper's real dataset), while multi-event
    contiguity — what patterns measure — remains informative.
    """

    def __init__(
        self,
        children: SequenceABC[ProcessTree],
        weights: SequenceABC[float] | None = None,
    ):
        self.children = list(children)
        if weights is not None and len(weights) != len(self.children):
            raise ValueError("one weight per child required")
        self.weights = list(weights) if weights is not None else None

    def sample(self, rng: random.Random) -> list[Event]:
        streams = [child.sample(rng) for child in self.children]
        weights = (
            list(self.weights) if self.weights is not None
            else [1.0] * len(streams)
        )
        positions = [0] * len(streams)
        merged: list[Event] = []
        pending = [
            index for index, stream in enumerate(streams) if stream
        ]
        while pending:
            chosen = rng.choices(
                pending, weights=[weights[i] for i in pending]
            )[0]
            merged.append(streams[chosen][positions[chosen]])
            positions[chosen] += 1
            if positions[chosen] == len(streams[chosen]):
                pending.remove(chosen)
        return merged

    def activities(self) -> set[Event]:
        collected: set[Event] = set()
        for child in self.children:
            collected |= child.activities()
        return collected

    def __repr__(self) -> str:
        return f"Interleave({self.children})"


class Choice(ProcessTree):
    """Exactly one child executes, drawn by weight."""

    def __init__(
        self,
        children: SequenceABC[ProcessTree],
        weights: SequenceABC[float] | None = None,
    ):
        self.children = list(children)
        if weights is not None and len(weights) != len(self.children):
            raise ValueError("one weight per child required")
        self.weights = list(weights) if weights is not None else None

    def sample(self, rng: random.Random) -> list[Event]:
        child = rng.choices(self.children, weights=self.weights)[0]
        return child.sample(rng)

    def activities(self) -> set[Event]:
        collected: set[Event] = set()
        for child in self.children:
            collected |= child.activities()
        return collected

    def __repr__(self) -> str:
        return f"Choice({self.children})"


class Optional(ProcessTree):
    """The child executes with probability ``probability``, else skips."""

    def __init__(self, child: ProcessTree, probability: float):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.child = child
        self.probability = probability

    def sample(self, rng: random.Random) -> list[Event]:
        if rng.random() < self.probability:
            return self.child.sample(rng)
        return []

    def activities(self) -> set[Event]:
        return self.child.activities()

    def __repr__(self) -> str:
        return f"Optional({self.child}, p={self.probability})"


class Loop(ProcessTree):
    """The child executes once, then repeats with ``continue_probability``."""

    def __init__(
        self,
        child: ProcessTree,
        continue_probability: float,
        max_repeats: int = 10,
    ):
        if not 0.0 <= continue_probability < 1.0:
            raise ValueError("continue_probability must be in [0, 1)")
        self.child = child
        self.continue_probability = continue_probability
        self.max_repeats = max_repeats

    def sample(self, rng: random.Random) -> list[Event]:
        events = self.child.sample(rng)
        repeats = 0
        while (
            repeats < self.max_repeats
            and rng.random() < self.continue_probability
        ):
            events.extend(self.child.sample(rng))
            repeats += 1
        return events

    def activities(self) -> set[Event]:
        return self.child.activities()

    def __repr__(self) -> str:
        return f"Loop({self.child}, p={self.continue_probability})"


def simulate_log(
    tree: ProcessTree,
    num_traces: int,
    seed: int,
    name: str = "",
) -> EventLog:
    """Sample ``num_traces`` executions of ``tree`` into an event log."""
    rng = random.Random(seed)
    traces = [
        Trace(tree.sample(rng), case_id=str(case))
        for case in range(num_traces)
    ]
    return EventLog(traces, name=name)
