"""Logging noise.

Real event logs are messy: events get recorded out of order (clock skew,
batched writes) and occasionally not at all.  The paper's real dataset
shows this as a dense dependency graph — 57 edges over only 11 events —
full of low-frequency spurious consecutive pairs.  ``perturb_log``
reproduces that texture: random adjacent transpositions blur the edge
statistics (creating spurious edges and diluting true ones) and random
drops thin the vertex statistics slightly.

Contiguous pattern instances are also broken by a transposition landing
inside them, but at a similar rate in both logs, so pattern frequency
*similarity* — the matching signal — degrades far more slowly than
individual edge frequencies do.  This is exactly the regime in which the
paper's pattern-based matching out-discriminates edge statistics.
"""

from __future__ import annotations

import random

from repro.log.events import Trace
from repro.log.eventlog import EventLog


def perturb_log(
    log: EventLog,
    swap_rate: float = 0.0,
    drop_rate: float = 0.0,
    seed: int = 0,
) -> EventLog:
    """A noisy copy of ``log``.

    Parameters
    ----------
    swap_rate:
        Per-position probability of transposing a trace's adjacent event
        pair (one left-to-right pass, so a given event moves at most a
        couple of positions).
    drop_rate:
        Per-event probability of the event not being recorded.
    seed:
        Noise randomness; deterministic given the seed.
    """
    if not 0.0 <= swap_rate <= 1.0 or not 0.0 <= drop_rate <= 1.0:
        raise ValueError("rates must be within [0, 1]")
    rng = random.Random(seed)
    noisy_traces = []
    for trace in log:
        events = list(trace.events)
        if drop_rate > 0.0:
            events = [event for event in events if rng.random() >= drop_rate]
        if swap_rate > 0.0:
            position = 0
            while position < len(events) - 1:
                if rng.random() < swap_rate:
                    events[position], events[position + 1] = (
                        events[position + 1],
                        events[position],
                    )
                    position += 2  # the swapped pair is settled
                else:
                    position += 1
        if events:
            noisy_traces.append(Trace(events, case_id=trace.case_id))
    return EventLog(noisy_traces, name=log.name)
