"""Matching tasks: a log pair, its patterns and the ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapping import Mapping
from repro.log.eventlog import EventLog
from repro.patterns.ast import Pattern


@dataclass(frozen=True)
class MatchingTask:
    """Everything one matching experiment needs.

    ``patterns`` are declared over ``log_1``'s vocabulary; ``truth`` is
    the ground-truth event mapping ``V1 → V2`` (empty for the random
    logs, which have no true correspondence).
    """

    name: str
    log_1: EventLog
    log_2: EventLog
    patterns: tuple[Pattern, ...] = ()
    truth: Mapping = field(default_factory=Mapping)

    def project_events(self, num_events: int) -> "MatchingTask":
        """The sub-task over the first ``num_events`` events of ``log_1``.

        Follows the paper's sweep setup: keep the first ``num_events``
        events of ``log_1`` in first-appearance order, project ``log_2``
        onto their ground-truth images, restrict the truth accordingly and
        keep only the patterns whose events survive.
        """
        kept = self.log_1.events_in_first_appearance_order()[:num_events]
        kept_set = set(kept)
        images = {self.truth[event] for event in kept if event in self.truth}
        truth = self.truth.restrict_sources(kept_set)
        patterns = tuple(
            pattern
            for pattern in self.patterns
            if pattern.event_set() <= kept_set
        )
        return MatchingTask(
            name=f"{self.name}[events={num_events}]",
            log_1=self.log_1.project_events(kept_set),
            log_2=self.log_2.project_events(images),
            patterns=patterns,
            truth=truth,
        )

    def take_traces(self, num_traces: int) -> "MatchingTask":
        """The sub-task over the first ``num_traces`` traces of each log."""
        return MatchingTask(
            name=f"{self.name}[traces={num_traces}]",
            log_1=self.log_1.take_traces(num_traces),
            log_2=self.log_2.take_traces(num_traces),
            patterns=self.patterns,
            truth=self.truth,
        )
