"""Larger synthetic dataset (Figure 11 / Figure 12, Table 3 row 2).

The paper scales Figure 1's structure up by repeating it with fresh event
names.  Here each *block* contributes 10 events:

* a start event ``S``;
* four events ``Pa..Pd`` executed in parallel (an AND pattern) — but, as
  in the paper's instance sets, only a couple of interleavings actually
  occur in the logs, keeping the dependency graph sparse;
* a middle event ``M``;
* four alternative events ``Xa..Xd`` of which each trace performs exactly
  one, with block-specific choice weights.

Ten blocks chained give 100 events; traces are sampled from the block
variants, 10,000 per log.  The structural repetition across blocks is the
point: dependency graphs of different blocks look alike, so vertex/edge
statistics confuse events across blocks (the paper's Example 1 effect at
scale) while the per-block AND/SEQ patterns anchor the true mapping.

The 16 patterns of Table 3 are reproduced: one ``AND(Pa..Pd)`` per block
(10) plus ``SEQ(M, Xa)`` for the first six blocks.
"""

from __future__ import annotations

import random

from repro.core.mapping import Mapping
from repro.datagen.obfuscate import numeric_names
from repro.datagen.processtree import (
    Choice,
    Leaf,
    ProcessTree,
    Sequence,
    simulate_log,
)
from repro.datagen.task import MatchingTask
from repro.patterns.ast import Pattern, and_, seq

EVENTS_PER_BLOCK = 10


def _block_events(block: int) -> dict[str, list[str] | str]:
    prefix = f"B{block:02d}"
    return {
        "start": f"{prefix}S",
        "parallel": [f"{prefix}P{letter}" for letter in "abcd"],
        "middle": f"{prefix}M",
        "choices": [f"{prefix}X{letter}" for letter in "abcd"],
    }


def _block_tree(
    block: int,
    variant_rng: random.Random,
    weight_noise: float,
    noise_rng: random.Random,
) -> ProcessTree:
    """One block's process tree.

    ``variant_rng`` picks which two interleavings of the parallel part
    exist (shared between the two logs — the process is the same);
    ``noise_rng``/``weight_noise`` perturb the routing probabilities (the
    heterogeneity between the two systems).
    """
    events = _block_events(block)
    parallel = list(events["parallel"])

    variants = []
    seen: set[tuple[str, ...]] = set()
    while len(variants) < 2:
        order = list(parallel)
        variant_rng.shuffle(order)
        key = tuple(order)
        if key not in seen:
            seen.add(key)
            variants.append(order)
    variant_weights = [
        _perturb(weight, weight_noise, noise_rng)
        for weight in (2.0, 1.0)
    ]

    # Block-specific alternative weights, drawn once per block (shared by
    # both logs through ``variant_rng``): blocks remain structurally
    # identical — the designed cross-block confusion — but their choice
    # frequencies differ, so the true block alignment stays identifiable.
    choice_weights = [
        _perturb(variant_rng.uniform(1.0, 4.0), weight_noise, noise_rng)
        for _ in range(4)
    ]

    return Sequence(
        [
            Leaf(events["start"]),
            Choice(
                [
                    Sequence([Leaf(activity) for activity in order])
                    for order in variants
                ],
                weights=variant_weights,
            ),
            Leaf(events["middle"]),
            Choice(
                [Leaf(choice) for choice in events["choices"]],
                weights=choice_weights,
            ),
        ]
    )


def _perturb(value: float, noise: float, rng: random.Random) -> float:
    if noise <= 0.0:
        return value
    return value * (1.0 + rng.uniform(-noise, noise))


def generate_synthetic(
    num_blocks: int = 10,
    num_traces: int = 10_000,
    seed: int = 11,
    heterogeneity: float = 0.10,
) -> MatchingTask:
    """Generate the large synthetic matching task.

    ``num_blocks`` blocks of 10 events each; 16 patterns at the default
    10 blocks (scaled proportionally otherwise).
    """
    if num_blocks < 1:
        raise ValueError("num_blocks must be positive")

    def build(log_index: int) -> ProcessTree:
        # The variant structure must be identical in both logs, so its
        # RNG is seeded independently of the log index.
        variant_rng = random.Random(seed + 1000)
        noise_rng = random.Random(seed + 2000 + log_index)
        noise = 0.0 if log_index == 1 else heterogeneity
        return Sequence(
            [
                _block_tree(block, variant_rng, noise, noise_rng)
                for block in range(num_blocks)
            ]
        )

    log_1 = simulate_log(build(1), num_traces, seed=seed, name="synthetic-1")
    all_events = sorted(log_1.alphabet())
    renaming = numeric_names(all_events)
    log_2 = simulate_log(
        build(2), num_traces, seed=seed + 1, name="synthetic-2"
    ).rename_events(renaming)

    patterns: list[Pattern] = []
    for block in range(num_blocks):
        events = _block_events(block)
        patterns.append(and_(*events["parallel"]))
    # SEQ patterns on the first six blocks (16 patterns total at the
    # paper's 10 blocks).
    seq_blocks = max(0, min(num_blocks, round(num_blocks * 0.6)))
    for block in range(seq_blocks):
        events = _block_events(block)
        patterns.append(seq(events["middle"], events["choices"][0]))

    return MatchingTask(
        name="synthetic",
        log_1=log_1,
        log_2=log_2,
        patterns=tuple(patterns),
        truth=Mapping(renaming),
    )
