"""Large-vocabulary workloads for the blocking tier.

The paper's datasets top out at a few dozen event types — enough to
stress the exact search, far too small to exercise blocking.  This
generator builds *family-structured* logs whose vocabularies scale to
hundreds or thousands of event types while staying cheap to sample.
The vocabulary is ``num_families x roles_per_family`` events; each
trace samples families independently and emits a sampled family's roles
as an in-family sequence (a *chain*).  Inclusion probabilities come
from a **level grid** — evenly spaced frequency levels over
``[0.08, 0.95]`` — in one of two layouts:

* **per-event levels** (``family_chains=False``, the default): event
  ``k`` sits on level ``k % num_levels`` with
  ``ceil(V / events_per_level)`` levels, so with ``events_per_level=1``
  every event's frequency is unique and blocking resolves the instance
  almost entirely by auto-accept — the regime where the *unblocked*
  exact baseline is still feasible and blocked/unblocked F-measures are
  directly comparable (the ``bench_blocking.py`` gate instance);
* **per-family levels** (``family_chains=True``): a whole family chain
  shares one level (``ceil(num_families / families_per_level)``
  levels), so same-level events are only separable by *structure*.
  Families sharing a level differ in **chain contiguity**: family ``f``
  emits its chain contiguously with a per-family probability drawn from
  a spread grid, otherwise its roles scatter across the trace.  Edge
  (bigram) frequencies therefore differ per family while vertex
  frequencies coincide — exactly the evidence the in-block searches and
  the bigram-signature blocking profiles need, and all of it *inside*
  the block, where a restricted search can see it.

``log_2`` is an independently sampled log over renamed events (codes
``x000``, ``x001``, …) whose inclusion probabilities are perturbed by
up to ``heterogeneity``; the renaming is the ground truth.  With
``heterogeneity=0.0`` both logs sample the *same* process, so the
identity (modulo renaming) is optimal for any reasonable score.
"""

from __future__ import annotations

import math
import random

from repro.core.mapping import Mapping
from repro.datagen.task import MatchingTask
from repro.log.events import Trace
from repro.log.eventlog import EventLog
from repro.patterns.ast import seq


def _level_grid(num_levels: int) -> list[float]:
    """``num_levels`` inclusion probabilities evenly spread in [0.08, 0.95]."""
    if num_levels == 1:
        return [0.6]
    return [
        0.08 + 0.87 * level / (num_levels - 1) for level in range(num_levels)
    ]


def _contiguity_grid(num_variants: int) -> list[float]:
    """Distinct chain-contiguity probabilities, spread over [0.15, 0.9]."""
    if num_variants == 1:
        return [0.9]
    return [
        0.9 - 0.75 * variant / (num_variants - 1)
        for variant in range(num_variants)
    ]


def _sample_log(
    names: list[list[str]],
    probabilities: list[list[float]],
    contiguity: list[float],
    num_traces: int,
    rng: random.Random,
    name: str,
) -> EventLog:
    traces = []
    for case in range(num_traces):
        segments: list[list[str]] = []
        scattered: list[str] = []
        for family, (family_names, family_probs) in enumerate(
            zip(names, probabilities)
        ):
            chain = [
                event
                for event, probability in zip(family_names, family_probs)
                if rng.random() < probability
            ]
            if not chain:
                continue
            if len(chain) > 1 and rng.random() >= contiguity[family]:
                scattered.extend(chain)
            else:
                segments.append(chain)
        rng.shuffle(segments)
        events = [event for segment in segments for event in segment]
        for event in scattered:
            events.insert(rng.randrange(len(events) + 1), event)
        if not events:  # keep every trace non-empty for the interner
            events.append(names[0][0])
        traces.append(Trace(events, case_id=str(case)))
    return EventLog(traces, name=name)


def generate_largevocab(
    num_families: int = 40,
    roles_per_family: int = 4,
    num_traces: int = 400,
    seed: int = 0,
    heterogeneity: float = 0.0,
    events_per_level: int = 1,
    family_chains: bool = False,
    families_per_level: int = 4,
    max_patterns: int = 10,
) -> MatchingTask:
    """A large-vocabulary matching task with known ground truth.

    Parameters
    ----------
    num_families, roles_per_family:
        Vocabulary shape: ``num_families * roles_per_family`` event
        types per log.
    num_traces:
        Traces per log; more traces sharpen the frequency estimates the
        blocking signals read (sampling noise shrinks as
        ``1 / sqrt(num_traces)``).
    seed:
        Seeds both logs' samplers (independently derived).
    heterogeneity:
        Each of ``log_2``'s inclusion probabilities is shifted by a
        uniform draw from ``[-heterogeneity, +heterogeneity]``.  Keep it
        below half the level-grid spacing for blocking to stay lossless.
    events_per_level:
        Per-event layout only: how many events share each frequency
        level.  ``1`` makes every event frequency-unique (blocking
        resolves the whole instance by auto-accept); larger values
        create ``k``-vs-``k`` ambiguous blocks.
    family_chains:
        Switch to the per-family level layout: whole chains share one
        frequency level and same-level families differ only by chain
        contiguity (see module docstring).  The blocking-at-scale
        regime — vertex frequencies alone cannot separate the
        vocabulary, in-block edge evidence must.
    families_per_level:
        Per-family layout only: chains sharing each level (the ambiguous
        block width is ``families_per_level * roles_per_family``).
    max_patterns:
        Complex SEQ patterns over the first two roles of the lowest-id
        families (at most one per family).
    """
    if num_families < 1:
        raise ValueError("num_families must be >= 1")
    if roles_per_family < 1:
        raise ValueError("roles_per_family must be >= 1")
    if num_traces < 1:
        raise ValueError("num_traces must be >= 1")
    if heterogeneity < 0.0:
        raise ValueError("heterogeneity must be non-negative")
    if events_per_level < 1:
        raise ValueError("events_per_level must be >= 1")
    if families_per_level < 1:
        raise ValueError("families_per_level must be >= 1")

    vocabulary = num_families * roles_per_family
    names_1 = [
        [f"F{family:03d}_{role}" for role in range(roles_per_family)]
        for family in range(num_families)
    ]
    names_2 = [
        [f"x{family * roles_per_family + role:03d}"
         for role in range(roles_per_family)]
        for family in range(num_families)
    ]
    truth = Mapping(
        {
            names_1[family][role]: names_2[family][role]
            for family in range(num_families)
            for role in range(roles_per_family)
        }
    )

    if family_chains:
        num_levels = math.ceil(num_families / families_per_level)
        grid = _level_grid(num_levels)
        variants = _contiguity_grid(families_per_level)
        # Families sharing level ``f % num_levels`` get distinct
        # contiguity variants (``f // num_levels`` cycles through them).
        probabilities = [
            [grid[family % num_levels]] * roles_per_family
            for family in range(num_families)
        ]
        contiguity = [
            variants[(family // num_levels) % families_per_level]
            for family in range(num_families)
        ]
    else:
        num_levels = math.ceil(vocabulary / events_per_level)
        grid = _level_grid(num_levels)
        # Event (family, role) sits on level ``index % num_levels``:
        # events sharing a level land in different families, so the
        # within-family role chain always spans distinct frequencies.
        probabilities = [
            [
                grid[(family * roles_per_family + role) % num_levels]
                for role in range(roles_per_family)
            ]
            for family in range(num_families)
        ]
        contiguity = [1.0] * num_families

    noise = random.Random(seed + 1)
    probabilities_2 = [
        [
            min(
                0.995,
                max(
                    0.005,
                    probability
                    + noise.uniform(-heterogeneity, heterogeneity),
                ),
            )
            for probability in family
        ]
        for family in probabilities
    ]

    log_1 = _sample_log(
        names_1,
        probabilities,
        contiguity,
        num_traces,
        random.Random(seed * 2 + 17),
        name="largevocab-1",
    )
    log_2 = _sample_log(
        names_2,
        probabilities_2,
        contiguity,
        num_traces,
        random.Random(seed * 2 + 18),
        name="largevocab-2",
    )

    patterns = tuple(
        seq(names_1[family][0], names_1[family][1])
        for family in range(min(num_families, max_patterns))
        if roles_per_family >= 2
    )
    return MatchingTask(
        name=f"largevocab[{vocabulary}]",
        log_1=log_1,
        log_2=log_2,
        patterns=patterns,
        truth=truth,
    )
