"""Random logs (Table 4).

Two logs of uniformly random traces over small disjoint alphabets.  No
true mapping exists; the paper uses this dataset to verify that the
matchers do not systematically favour particular mappings — over 1,000
repetitions every one of the 4! = 24 possible mappings should be returned
with roughly equal frequency.
"""

from __future__ import annotations

import random
import string

from repro.core.mapping import Mapping
from repro.datagen.task import MatchingTask
from repro.log.events import Trace
from repro.log.eventlog import EventLog


def _random_log(
    alphabet: list[str],
    num_traces: int,
    rng: random.Random,
    min_length: int,
    max_length: int,
    name: str,
) -> EventLog:
    traces = []
    for case in range(num_traces):
        length = rng.randint(min_length, max_length)
        traces.append(
            Trace(
                (rng.choice(alphabet) for _ in range(length)),
                case_id=str(case),
            )
        )
    return EventLog(traces, name=name)


def generate_random_pair(
    num_events: int = 4,
    num_traces: int = 1000,
    seed: int = 0,
    min_length: int = 2,
    max_length: int = 8,
) -> MatchingTask:
    """A pair of independent random logs with no ground truth.

    ``log_1`` uses letters (``A``, ``B``, …), ``log_2`` digits starting
    at ``1`` — the paper's presentation.  The returned task has an empty
    truth mapping and no complex patterns (Table 3, row 3).
    """
    if num_events < 1 or num_events > 26:
        raise ValueError("num_events must be between 1 and 26")
    rng = random.Random(seed)
    letters = list(string.ascii_uppercase[:num_events])
    digits = [str(index + 1) for index in range(num_events)]
    log_1 = _random_log(
        letters, num_traces, rng, min_length, max_length, name="random-1"
    )
    log_2 = _random_log(
        digits, num_traces, rng, min_length, max_length, name="random-2"
    )
    return MatchingTask(
        name="random",
        log_1=log_1,
        log_2=log_2,
        patterns=(),
        truth=Mapping({}),
    )
