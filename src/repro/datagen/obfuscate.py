"""Opaque event renaming.

The heterogeneous systems of the paper encode the same activities under
incomparable names (English phrases in one department, abbreviated Chinese
phonetics in the other — e.g. *Ship Goods* vs *FH*).  This module produces
such opaque renamings deterministically from a seed, guaranteeing that no
generated code shares characters positionally with the original name, so
any accidental typographic similarity is destroyed.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.log.events import Event

_CONSONANTS = "BCDFGHJKLMNPQRSTWXZ"


def opaque_names(
    events: Iterable[Event], seed: int, code_length: int = 2
) -> dict[Event, Event]:
    """A deterministic mapping from ``events`` to distinct opaque codes.

    Codes are short consonant strings (``FH``-style abbreviations); a
    numeric suffix disambiguates collisions once the code space is dense.
    """
    rng = random.Random(seed)
    mapping: dict[Event, Event] = {}
    used: set[Event] = set()
    for event in sorted(set(events)):
        while True:
            code = "".join(
                rng.choice(_CONSONANTS) for _ in range(code_length)
            )
            if code not in used:
                break
            code = f"{code}{rng.randrange(10, 100)}"
            if code not in used:
                break
        used.add(code)
        mapping[event] = code
    return mapping


def numeric_names(events: Iterable[Event], start: int = 1) -> dict[Event, Event]:
    """Rename events to ``"1", "2", …`` in sorted order (paper's L2 style)."""
    return {
        event: str(start + position)
        for position, event in enumerate(sorted(set(events)))
    }
