"""Stdlib HTTP surface of the matching daemon.

Built on :class:`http.server.ThreadingHTTPServer` — the service has a
hard no-new-dependencies rule, and the workload (a handful of
operators/scripts polling JSON) is squarely what the stdlib server is
good for.  Handler threads only touch the thread-safe facades
(:class:`~repro.service.daemon.MatchingService` components all lock
internally); the scheduling work itself stays in the daemon loop.

Routes::

    GET  /healthz                      liveness + counters
    GET  /readyz                       readiness: 200 READY / 503 DEGRADED
    GET  /metrics                      Prometheus text exposition
    GET  /logs                         registered logs
    POST /logs/{name}                  register a log (CSV request body)
    GET  /quarantine                   dead-letter summary + recent records
    GET  /logs/tail?n=100              last n structured log lines (ring)
    GET  /jobs                         all jobs, oldest first
    POST /jobs                         submit {log_1, log_2, patterns?, ...}
    GET  /jobs/{id}                    one job, result inline when done
    GET  /jobs/{id}/trace              merged per-job Chrome trace JSON
    POST /jobs/{id}/rematch            re-queue the same recipe
    POST /debug/profile                sample the daemon {seconds}; speedscope
    GET  /sessions                     session names
    POST /sessions                     open {name, reference, patterns?, ...}
    GET  /sessions/{name}              status incl. current mapping
    POST /sessions/{name}/traces       feed {traces: [[event, ...], ...]}
    POST /sessions/{name}/checkpoint   checkpoint now
    POST /tick                         run one scheduling round now
    POST /shutdown                     save state and stop serving

Every response is JSON except ``/metrics`` (text).  Errors follow one
shape: ``{"error": "..."}`` with a 4xx/5xx status.

Every request carries a ``trace_id`` — the client's ``X-Trace-Id``
header when sane, freshly minted otherwise — bound into the structured
log context for the handler's duration, echoed back as a response
header, and stamped onto submitted jobs so one id follows the work
HTTP → queue → worker → merged trace.

Backpressure: ``POST /jobs`` against a queue at its ``--queue-bound``
returns ``429 Too Many Requests`` with a ``Retry-After`` header;
``GET /readyz`` serves ``503`` while the service is degraded (queue
saturated, worker pool rebuilding) so load balancers stop routing new
work without killing the process.
"""

from __future__ import annotations

import io
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.log.csvio import read_csv
from repro.log.errors import LogReadError
from repro.obs.logs import bind, get_logger
from repro.obs.profiler import profile_for
from repro.obs.telemetry import new_trace_id, validate_trace_id
from repro.service.daemon import MatchingService
from repro.service.jobs import DONE, FAILED, QueueFullError, UnknownJobError
from repro.service.registry import UnknownLogError
from repro.service.sessions import UnknownSessionError

logger = get_logger("service.api")

_MAX_BODY = 64 * 1024 * 1024  # refuse absurd uploads before reading them


class ServiceAPI:
    """Own the HTTP server for one :class:`MatchingService`.

    ``port=0`` binds an ephemeral port (tests, CI); read :attr:`port`
    after construction.  :meth:`start` serves from a daemon thread;
    :meth:`stop` shuts the listener down.  The ``stopping`` event is
    set by ``POST /shutdown`` for the daemon loop to observe.
    """

    def __init__(
        self, service: MatchingService, host: str = "127.0.0.1", port: int = 0
    ):
        self.service = service
        self.stopping = threading.Event()
        api = self

        class Handler(_ServiceHandler):
            pass

        Handler.api = api
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceAPI":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the service; one instance per request."""

    api: ServiceAPI  # injected by ServiceAPI per server
    protocol_version = "HTTP/1.1"

    # Silence the default stderr access log; the probe counts requests.
    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def do_GET(self):  # noqa: N802 — stdlib naming
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, verb: str) -> None:
        service = self.api.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        route = "/" + "/".join(parts)
        # Every request gets a trace id — the client's X-Trace-Id if it
        # sent a sane one, a fresh mint otherwise.  It is bound into the
        # log context for the whole handler, echoed back as a response
        # header, and (for POST /jobs) becomes the job's trace_id.
        self._trace_id = (
            validate_trace_id(self.headers.get("X-Trace-Id")) or new_trace_id()
        )
        with bind(trace_id=self._trace_id):
            try:
                handled = self._route(verb, parts, service)
            except (
                UnknownLogError, UnknownJobError, UnknownSessionError
            ) as error:
                handled = self._error(404, _message(error))
            except QueueFullError as error:
                handled = self._error(
                    429,
                    _message(error),
                    headers={
                        "Retry-After": str(max(1, round(error.retry_after)))
                    },
                )
            except KeyError as error:
                handled = self._error(400, f"missing field: {_message(error)}")
            except (ValueError, LogReadError) as error:
                handled = self._error(400, _message(error))
            except Exception as error:  # noqa: BLE001 — the 500 boundary
                handled = self._error(500, f"{type(error).__name__}: {error}")
            if not handled:
                self._error(404, f"no route {verb} {route}")
            status = getattr(self, "_status", 0)
            logger.debug(
                "request served",
                extra={"route": _route_label(verb, parts), "status": status},
            )
        probe = service.probe
        if probe.enabled and status:
            probe.on_http_request(_route_label(verb, parts), status)

    def _route(self, verb: str, parts: list[str], service) -> bool:
        if verb == "GET":
            if parts == ["healthz"]:
                return self._json(200, service.health())
            if parts == ["readyz"]:
                verdict = service.readyz()
                ready = verdict.get("status") == "ready"
                return self._json(200 if ready else 503, verdict)
            if parts == ["metrics"]:
                metrics = getattr(service.probe, "metrics", None)
                if metrics is None:
                    return self._text(200, "# no metrics registry attached\n")
                return self._text(200, metrics.to_prometheus())
            if parts == ["logs"]:
                return self._json(
                    200,
                    {
                        "logs": [
                            service.registry.info(name).to_payload()
                            for name in service.registry.names()
                        ]
                    },
                )
            if parts == ["quarantine"]:
                store = service.quarantine
                return self._json(
                    200,
                    {
                        "total_seen": store.total_seen,
                        "dropped": store.dropped,
                        "spilled": store.spilled,
                        "by_reason": store.counts_by_reason(),
                        "records": [
                            record.to_payload() for record in store.records[-50:]
                        ],
                    },
                )
            if parts == ["logs", "tail"]:
                ring = service.log_ring
                count = self._query_int("n", 100)
                return self._json(
                    200,
                    {
                        "enabled": ring is not None,
                        "lines": ring.tail(count) if ring is not None else [],
                    },
                )
            if parts == ["jobs"]:
                return self._json(
                    200, {"jobs": [job.to_payload() for job in service.jobs.jobs()]}
                )
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
                job = service.jobs.get(parts[1])  # 404 on unknown id
                if not service.telemetry.enabled:
                    return self._error(
                        404, "telemetry is disabled on this service"
                    )
                if job.state not in (DONE, FAILED):
                    return self._error(
                        404,
                        f"trace for {job.job_id} is not ready "
                        f"(job is {job.state}); retry once it finishes",
                    )
                return self._json(200, service.telemetry.trace_document(job))
            if len(parts) == 2 and parts[0] == "jobs":
                return self._json(200, service.jobs.get(parts[1]).to_payload())
            if parts == ["sessions"]:
                return self._json(200, {"sessions": service.sessions.names()})
            if len(parts) == 2 and parts[0] == "sessions":
                return self._json(200, service.sessions.status(parts[1]))
            return False

        # POST --------------------------------------------------------
        if len(parts) == 2 and parts[0] == "logs":
            body = self._body_text()
            log = read_csv(
                io.StringIO(body),
                name=parts[1],
                on_error="quarantine",
                quarantine=service.quarantine,
            )
            entry = service.registry.register(parts[1], log, source="api")
            if service.probe.enabled:
                service.probe.on_file_ingested("registered")
            return self._json(201, entry.to_payload())
        if parts == ["jobs"]:
            options = self._body_json()
            job = service.submit_job(
                options.pop("log_1"),
                options.pop("log_2"),
                patterns=tuple(options.pop("patterns", ())),
                trace_id=self._trace_id,
                **_job_options(options),
            )
            return self._json(202, job.to_payload())
        if parts == ["debug", "profile"]:
            options = self._body_json()
            seconds = options.get("seconds", 1.0)
            if not isinstance(seconds, (int, float)) or not 0 < seconds <= 60:
                raise ValueError("seconds must be a number in (0, 60]")
            profiler = profile_for(float(seconds))
            return self._json(
                200,
                {
                    "seconds": float(seconds),
                    **profiler.state(),
                    "speedscope": profiler.speedscope(name="repro-daemon"),
                },
            )
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "rematch":
            service.jobs.get(parts[1])  # 404 before queueing
            return self._json(202, service.jobs.rematch(parts[1]).to_payload())
        if parts == ["sessions"]:
            options = self._body_json()
            name = options.pop("name")
            service.sessions.create(
                name,
                options.pop("reference"),
                patterns=tuple(options.pop("patterns", ())),
                **options,
            )
            return self._json(201, service.sessions.status(name))
        if len(parts) == 3 and parts[0] == "sessions" and parts[2] == "traces":
            payload = self._body_json()
            outcome = service.sessions.append(
                parts[1], payload.get("traces", ())
            )
            return self._json(200, outcome)
        if (
            len(parts) == 3
            and parts[0] == "sessions"
            and parts[2] == "checkpoint"
        ):
            path = service.sessions.checkpoint(parts[1])
            return self._json(200, {"checkpoint": str(path)})
        if parts == ["tick"]:
            return self._json(200, service.tick())
        if parts == ["shutdown"]:
            service.save_state()
            self.api.stopping.set()
            return self._json(200, {"status": "stopping"})
        return False

    # ------------------------------------------------------------------
    # Body / response plumbing
    # ------------------------------------------------------------------
    def _query_int(self, name: str, default: int) -> int:
        values = parse_qs(urlparse(self.path).query).get(name)
        if not values:
            return default
        try:
            return max(0, int(values[-1]))
        except ValueError:
            raise ValueError(f"query parameter {name!r} must be an integer")

    def _body_text(self) -> str:
        length = int(self.headers.get("Content-Length", 0))
        if length > _MAX_BODY:
            raise ValueError(f"request body exceeds {_MAX_BODY} bytes")
        return self.rfile.read(length).decode("utf-8")

    def _body_json(self) -> dict:
        text = self._body_text() or "{}"
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> bool:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return self._respond(status, body, "application/json", headers)

    def _text(self, status: int, text: str) -> bool:
        return self._respond(
            status, text.encode("utf-8"), "text/plain; version=0.0.4"
        )

    def _error(
        self, status: int, message: str, headers: dict | None = None
    ) -> bool:
        return self._json(status, {"error": message}, headers)

    def _respond(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict | None = None,
    ) -> bool:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        return True


def _job_options(options: dict) -> dict:
    """Whitelist job options from an API payload (unknown keys are 400s)."""
    allowed = {
        "method",
        "node_budget",
        "time_budget",
        "strict",
        "degraded_fallback",
        "workers",
        "blocking",
        "deadline",
    }
    unknown = set(options) - allowed
    if unknown:
        raise ValueError(f"unknown job options: {sorted(unknown)}")
    return options


def _route_label(verb: str, parts: list[str]) -> str:
    """Low-cardinality route label for metrics (ids collapsed)."""
    labeled = [
        "{id}" if index == 1 and parts[0] in ("jobs", "sessions", "logs") else p
        for index, p in enumerate(parts)
    ]
    return f"{verb} /" + "/".join(labeled)


def _message(error: Exception) -> str:
    # KeyError reprs its argument; unwrap for readable API errors.
    if isinstance(error, KeyError) and error.args:
        return str(error.args[0])
    return str(error)
