"""Match jobs: the unit of work the daemon schedules.

A :class:`MatchJob` is a *recipe*, not a computation — two registered
log names, pattern texts, and matcher options.  Log names resolve to
spool paths at dispatch time, so a job survives the daemon restarting
(it lives in the manifest as plain JSON) and always matches the current
registration of its logs.

The :class:`JobQueue` owns the lifecycle::

    QUEUED --claim--> RUNNING --finish--> DONE
                       |    |
                       |    +--fail----> FAILED
                       +----retry----> QUEUED (backoff-pending)

All transitions are lock-protected (HTTP handler threads submit while
the daemon loop claims) and every transition is visible to the probe:
``repro_service_jobs_submitted_total``, ``repro_service_jobs_finished``
``_total{state=...}`` and the ``repro_service_queue_depth`` gauge.

Supervision (PR 8) adds two queue-level policies:

* **Backpressure** — a ``bound`` on queue depth; :meth:`submit` raises
  :class:`QueueFullError` once that many jobs are queued or running,
  which the HTTP API maps to ``429 Too Many Requests``.
* **Retry bookkeeping** — each job counts its ``attempts`` and the
  ``worker_deaths`` it caused; :meth:`retry` flips a RUNNING job back to
  QUEUED with a ``not_before`` backoff stamp that :meth:`claim_next`
  honours.  ``not_before`` is a ``time.monotonic`` value and therefore
  deliberately *not* persisted — after a restart every queued job is
  immediately runnable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

from repro.obs.probe import NULL_PROBE, Probe
from repro.obs.telemetry import new_trace_id, validate_trace_id
from repro.resilience.supervise import validate_deadline

class UnknownJobError(KeyError):
    """An API call referenced a job id that does not exist."""


class QueueFullError(RuntimeError):
    """Submission refused: the queue is at its depth bound.

    Carries ``retry_after`` — the coarse seconds a client should wait
    before resubmitting (the API surfaces it as a ``Retry-After``
    header).
    """

    def __init__(self, depth: int, bound: int, retry_after: float = 1.0):
        super().__init__(
            f"queue is full ({depth} jobs against a bound of {bound})"
        )
        self.depth = depth
        self.bound = bound
        self.retry_after = retry_after


QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States a job can be observed in; terminal ones keep their payload.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)


@dataclass
class MatchJob:
    """One scheduled matching run between two registered logs."""

    job_id: str
    log_1: str
    log_2: str
    patterns: tuple[str, ...] = ()
    method: str = "pattern-tight"
    node_budget: int | None = None
    time_budget: float | None = None
    strict: bool = False
    degraded_fallback: float | None = None
    workers: int = 1
    #: Blocking-tier request: ``None``/``False`` off, ``True`` default
    #: knobs, or a :class:`~repro.blocking.BlockingConfig` field dict.
    blocking: dict | bool | None = None
    state: str = QUEUED
    result: dict | None = None
    error: str | None = None
    elapsed_seconds: float = 0.0
    # -- telemetry (PR 9) -----------------------------------------------
    #: Correlation id minted at submission (or propagated from the
    #: client's ``X-Trace-Id``); rides the payload into the worker and
    #: names every span/log line the job produces across processes.
    trace_id: str | None = None
    # -- supervision bookkeeping (PR 8) --------------------------------
    #: Optional per-job wall-clock budget in seconds (overrides the
    #: service-level default when set).
    deadline: float | None = None
    #: Completed execution attempts (0 until first claimed).
    attempts: int = 0
    #: Workers that died while executing this job (two = poison).
    worker_deaths: int = 0
    #: ``time.monotonic`` stamp before which claim_next skips this job.
    #: Monotonic clocks don't survive restarts, so this is never
    #: persisted — restored jobs are immediately runnable.
    not_before: float = 0.0

    def to_payload(self) -> dict:
        return {
            "job_id": self.job_id,
            "log_1": self.log_1,
            "log_2": self.log_2,
            "patterns": list(self.patterns),
            "method": self.method,
            "node_budget": self.node_budget,
            "time_budget": self.time_budget,
            "strict": self.strict,
            "degraded_fallback": self.degraded_fallback,
            "workers": self.workers,
            "blocking": self.blocking,
            "state": self.state,
            "result": self.result,
            "error": self.error,
            "elapsed_seconds": self.elapsed_seconds,
            "trace_id": self.trace_id,
            "deadline": self.deadline,
            "attempts": self.attempts,
            "worker_deaths": self.worker_deaths,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MatchJob":
        # A hand-edited or corrupt manifest must not wedge restore (or,
        # worse, smuggle a non-numeric deadline past submit-time
        # validation into the daemon loop): drop malformed deadlines.
        try:
            deadline = validate_deadline(payload.get("deadline"))
        except ValueError:
            deadline = None
        return cls(
            job_id=payload["job_id"],
            log_1=payload["log_1"],
            log_2=payload["log_2"],
            patterns=tuple(payload.get("patterns", ())),
            method=payload.get("method", "pattern-tight"),
            node_budget=payload.get("node_budget"),
            time_budget=payload.get("time_budget"),
            strict=payload.get("strict", False),
            degraded_fallback=payload.get("degraded_fallback"),
            workers=payload.get("workers", 1),
            blocking=payload.get("blocking"),
            state=payload.get("state", QUEUED),
            result=payload.get("result"),
            error=payload.get("error"),
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            trace_id=validate_trace_id(payload.get("trace_id")),
            deadline=deadline,
            attempts=payload.get("attempts", 0),
            worker_deaths=payload.get("worker_deaths", 0),
        )


class JobQueue:
    """Thread-safe FIFO of :class:`MatchJob` with terminal-state history.

    ``bound``, when set, caps the number of non-terminal jobs; a
    saturated queue refuses further submissions with
    :class:`QueueFullError` instead of growing without limit.
    """

    def __init__(self, probe: Probe | None = None, bound: int | None = None):
        if bound is not None and bound < 1:
            raise ValueError("queue bound must be positive")
        self._jobs: dict[str, MatchJob] = {}
        self._order: list[str] = []
        self._counter = 0
        self._lock = threading.Lock()
        self._probe = probe if probe is not None else NULL_PROBE
        self.bound = bound

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        log_1: str,
        log_2: str,
        patterns=(),
        method: str = "pattern-tight",
        node_budget: int | None = None,
        time_budget: float | None = None,
        strict: bool = False,
        degraded_fallback: float | None = None,
        workers: int = 1,
        blocking: dict | bool | None = None,
        deadline: float | None = None,
        trace_id: str | None = None,
        enforce_bound: bool = True,
    ) -> MatchJob:
        """Queue a new job; raises :class:`QueueFullError` at the bound.

        ``trace_id`` propagates a caller-supplied correlation id (the
        API's ``X-Trace-Id``); anything unusable is replaced by a fresh
        one, never rejected — correlation must not fail a submission.
        ``enforce_bound=False`` bypasses backpressure — used by manifest
        restore, where refusing previously-accepted jobs would lose them.
        """
        # Deadlines come from unauthenticated API payloads and flow into
        # parent-side `elapsed > deadline` arithmetic: reject anything
        # non-numeric/non-finite/non-positive here (the API's 400)
        # before it can detonate inside the daemon loop.
        deadline = validate_deadline(deadline)
        trace_id = validate_trace_id(trace_id) or new_trace_id()
        with self._lock:
            depth = self._depth_locked()
            if enforce_bound and self.bound is not None and depth >= self.bound:
                raise QueueFullError(depth, self.bound)
            self._counter += 1
            job = MatchJob(
                job_id=f"job-{self._counter:06d}",
                log_1=log_1,
                log_2=log_2,
                patterns=tuple(patterns),
                method=method,
                node_budget=node_budget,
                time_budget=time_budget,
                strict=strict,
                degraded_fallback=degraded_fallback,
                workers=workers,
                blocking=blocking,
                deadline=deadline,
                trace_id=trace_id,
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            depth = self._depth_locked()
        if self._probe.enabled:
            self._probe.on_job_submitted(method)
            self._probe.on_queue_depth(depth)
        return job

    def rematch(self, job_id: str) -> MatchJob:
        """Queue a fresh job with the same recipe as ``job_id``."""
        original = self.get(job_id)
        return self.submit(
            original.log_1,
            original.log_2,
            patterns=original.patterns,
            method=original.method,
            node_budget=original.node_budget,
            time_budget=original.time_budget,
            strict=original.strict,
            degraded_fallback=original.degraded_fallback,
            workers=original.workers,
            blocking=original.blocking,
            deadline=original.deadline,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def claim_next(self, now: float | None = None) -> MatchJob | None:
        """Oldest *runnable* queued job, flipped to RUNNING; ``None`` if idle.

        A job whose ``not_before`` backoff stamp is still in the future
        is skipped, not removed — it becomes runnable again once the
        clock passes the stamp.  Claiming counts as the start of an
        attempt, so ``attempts`` increments here.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.state == QUEUED and job.not_before <= now:
                    job.state = RUNNING
                    job.attempts += 1
                    return replace(job)
        return None

    def backoff_pending(self, now: float | None = None) -> int:
        """Queued jobs currently held back by a backoff stamp."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.state == QUEUED and job.not_before > now
            )

    def finish(self, job_id: str, result: dict, elapsed_seconds: float) -> None:
        self._finalize(job_id, DONE, result=result, elapsed=elapsed_seconds)

    def fail(self, job_id: str, error: str, elapsed_seconds: float = 0.0) -> None:
        self._finalize(job_id, FAILED, error=error, elapsed=elapsed_seconds)

    def retry(
        self,
        job_id: str,
        error: str,
        not_before: float = 0.0,
        worker_died: bool = False,
    ) -> MatchJob:
        """Flip a RUNNING job back to QUEUED for another attempt.

        ``error`` records why the last attempt failed (kept on the job
        so an eventually-poisoned job carries its history); ``not_before``
        is the monotonic stamp the backoff computed; ``worker_died``
        increments the poison-relevant death counter.
        """
        with self._lock:
            job = self._jobs[job_id]
            if job.state != RUNNING:
                raise ValueError(
                    f"cannot retry job {job_id!r} in state {job.state!r}"
                )
            job.state = QUEUED
            job.error = error
            job.result = None
            job.not_before = not_before
            if worker_died:
                job.worker_deaths += 1
            snapshot = replace(job)
        if self._probe.enabled:
            self._probe.on_queue_depth(self.depth)
        return snapshot

    def _finalize(
        self,
        job_id: str,
        state: str,
        result: dict | None = None,
        error: str | None = None,
        elapsed: float = 0.0,
    ) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = state
            job.result = result
            job.error = error
            job.elapsed_seconds = elapsed
            method = job.method
            depth = self._depth_locked()
        if self._probe.enabled:
            self._probe.on_job_finished(method, state, elapsed)
            self._probe.on_queue_depth(depth)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> MatchJob:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"no job named {job_id!r}")
            return replace(job)

    def jobs(self) -> list[MatchJob]:
        with self._lock:
            return [replace(self._jobs[job_id]) for job_id in self._order]

    def _depth_locked(self) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.state in (QUEUED, RUNNING)
        )

    @property
    def depth(self) -> int:
        """Jobs not yet in a terminal state."""
        with self._lock:
            return self._depth_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # ------------------------------------------------------------------
    # Manifest round-trip
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        with self._lock:
            return {
                "counter": self._counter,
                "jobs": [
                    self._jobs[job_id].to_payload() for job_id in self._order
                ],
            }

    def restore_payload(self, payload: dict) -> int:
        """Reload jobs from a manifest; interrupted jobs re-queue.

        DONE and FAILED jobs come back verbatim (their results are part
        of the service's history); QUEUED jobs stay queued; RUNNING jobs
        were killed mid-flight, so they restart from QUEUED — match jobs
        are pure functions of their recipe, rerunning is always safe.
        Returns how many jobs were re-queued for execution.
        """
        requeued = 0
        with self._lock:
            for job_payload in payload.get("jobs", ()):
                job = MatchJob.from_payload(job_payload)
                if job.state == RUNNING:
                    job.state = QUEUED
                    job.result = None
                    job.error = None
                if job.state == QUEUED:
                    requeued += 1
                if job.job_id not in self._jobs:
                    self._order.append(job.job_id)
                self._jobs[job.job_id] = job
            self._counter = max(
                self._counter, payload.get("counter", len(self._jobs))
            )
        return requeued
