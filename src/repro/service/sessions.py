"""Online matching sessions hosted inside the daemon.

Batch jobs can cross a process boundary because they are pure recipes;
an online session cannot — its value *is* its accumulated incremental
state (delta structures, drift baseline, rematch history).  Sessions
therefore live in the daemon process, fed trace-by-trace over the API,
and survive restarts through the existing versioned checkpoint layer:
every session checkpoints to ``<state>/sessions/<name>.json`` on the
daemon's cadence and on shutdown, and :meth:`SessionManager.resume`
rebuilds the whole fleet from whatever checkpoint files exist.

Determinism contract (exercised by the kill-and-resume tests): feeding
the same trace sequence through *any* interleaving of checkpoints,
kills, and resumes produces the identical mapping and score as one
uninterrupted session.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.obs.probe import NULL_PROBE, Probe
from repro.patterns.parser import parse_pattern
from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from repro.resilience.quarantine import QuarantineStore
from repro.resilience.validation import TraceValidator
from repro.service.registry import LogRegistry, validate_log_name
from repro.stream.engine import OnlineMatcher
from repro.stream.ingest import StreamingLog


class UnknownSessionError(KeyError):
    """An API call referenced a session name that does not exist."""


class SessionManager:
    """Named :class:`OnlineMatcher` sessions with checkpoint persistence."""

    def __init__(
        self,
        registry: LogRegistry,
        checkpoint_dir: str | Path,
        quarantine: QuarantineStore | None = None,
        probe: Probe | None = None,
    ):
        self.registry = registry
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine = quarantine
        self._sessions: dict[str, OnlineMatcher] = {}
        self._lock = threading.Lock()
        self._probe = probe if probe is not None else NULL_PROBE

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        reference: str,
        patterns=(),
        drift_threshold: float = 0.05,
        min_traces: int = 1,
        validate: bool = True,
        **engine_options,
    ) -> OnlineMatcher:
        """Open a session streaming against registered log ``reference``.

        ``patterns`` are pattern texts (the API is JSON-in); they are
        parsed here so a bad pattern fails the create call, not some
        later update.  ``validate`` attaches the standard open-vocabulary
        :class:`TraceValidator` (length + duplicate-case guards — the
        stream's vocabulary is intentionally unconstrained, discovering
        it is the point of matching) so garbage traffic lands in the
        service quarantine instead of skewing the session.
        """
        validate_log_name(name)
        with self._lock:
            if name in self._sessions:
                raise ValueError(f"session {name!r} already exists")
        reference_log = self.registry.get(reference)
        parsed = tuple(parse_pattern(text) for text in patterns)
        validator = TraceValidator() if validate else None
        stream = StreamingLog(
            name=name, validator=validator, quarantine=self.quarantine
        )
        engine = OnlineMatcher(
            reference_log,
            stream,
            patterns=parsed,
            drift_threshold=drift_threshold,
            min_traces=min_traces,
            probe=self._probe if self._probe.enabled else None,
            **engine_options,
        )
        with self._lock:
            if name in self._sessions:
                raise ValueError(f"session {name!r} already exists")
            self._sessions[name] = engine
        return engine

    def get(self, name: str) -> OnlineMatcher:
        with self._lock:
            engine = self._sessions.get(name)
        if engine is None:
            raise UnknownSessionError(f"no session named {name!r}")
        return engine

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def append(self, name: str, traces) -> dict:
        """Feed whole traces into a session and run one update cycle."""
        engine = self.get(name)
        accepted = 0
        for trace in traces:
            engine.stream.append_trace(trace)
            accepted += 1
        update = engine.update()
        return {
            "accepted_traces": accepted,
            "num_traces": update.num_traces,
            "rematch": update.rematched,
            "reason": update.reason,
            "score": update.score,
        }

    def status(self, name: str) -> dict:
        engine = self.get(name)
        mapping = engine.mapping
        return {
            "name": name,
            "reference": engine.reference.name,
            "num_traces": len(engine.stream.log),
            "updates": len(engine.history),
            "rematches": sum(1 for u in engine.history if u.rematched),
            "score": engine.history[-1].score if engine.history else None,
            "mapping": None
            if mapping is None
            else {
                str(source): str(target)
                for source, target in sorted(mapping.as_dict().items())
            },
            "checkpoint_sequence": engine.checkpoint_sequence,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _checkpoint_path(self, name: str) -> Path:
        return self.checkpoint_dir / f"{name}.json"

    def checkpoint(self, name: str) -> Path:
        return save_checkpoint(self.get(name), self._checkpoint_path(name))

    def checkpoint_all(self) -> list[str]:
        """Checkpoint every session; returns the names saved."""
        return [name for name in self.names() if self.checkpoint(name)]

    def resume(self) -> list[str]:
        """Restore every session checkpointed under ``checkpoint_dir``.

        Returns the restored names, sorted.  An unreadable checkpoint
        raises — resuming *past* a session silently would violate the
        determinism contract, so the operator must delete or fix the
        file explicitly.
        """
        restored = []
        for path in sorted(self.checkpoint_dir.glob("*.json")):
            engine = load_checkpoint(path)
            name = path.stem
            with self._lock:
                self._sessions[name] = engine
            if self._probe.enabled:
                engine.attach_probe(self._probe)
            restored.append(name)
        return restored
