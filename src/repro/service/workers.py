"""Job execution: the picklable recipe boundary and the supervised pool.

A match job crosses the process boundary as a plain dict (spool paths,
pattern texts, matcher options) and comes back as a plain dict (mapping,
score, gap, search counters).  :func:`execute_match_job` is the
module-level function both sides agree on — it rebuilds the task with
:meth:`repro.parallel.sweep.TaskSpec.from_files` exactly as the sweep
workers do, so the daemon inherits the same determinism guarantee: a
job's result is a pure function of its recipe.

:class:`WorkerPool` runs those recipes either **inline** (``processes=0``
— synchronous, in-process; the deterministic mode used by tests, the CI
smoke job, and ``repro serve --workers 0``) or on the persistent
:class:`~repro.parallel.pool.WarmPool` shared with the parallel search
layer.  Inline mode is not a toy: because results are produced by the
same function either way, switching modes cannot change any job's
output, only its latency.

The pool is *supervised* (PR 8): every harvested attempt comes back as
a :class:`JobOutcome` classified ``ok``/``error``/``crash``/
``deadline``, so the daemon's retry policy can tell a deterministic
recipe error (never worth a blind re-run on its own merits, but
bounded-retried for uniformity) from a worker that was SIGKILLed mid-
job (always worth one).  A ``BrokenProcessPool`` — the executor-wide
failure mode a single dead worker triggers — fails over every in-flight
job to the ``crash`` path and rebuilds the executor via
:meth:`~repro.parallel.pool.WarmPool.respawn`; a job that outlives its
parent-enforced wall-clock deadline is abandoned and its runaway worker
reclaimed the same way.  Because job recipes are pure, a retried
attempt on the rebuilt pool produces a bit-identical result to an
uninterrupted run.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.matcher import EventMatcher, MatchResult
from repro.obs.probe import NULL_PROBE, Probe
from repro.obs.telemetry import WorkerTelemetry, set_active_session
from repro.parallel.pool import current_warm_pool, get_warm_pool
from repro.parallel.sweep import TaskSpec
from repro.resilience.supervise import (
    OUTCOME_CRASH,
    OUTCOME_DEADLINE,
    OUTCOME_ERROR,
    OUTCOME_OK,
)

#: Longest a blocking harvest waits before giving control back to the
#: daemon loop — a dead worker must never strand the scheduler on a
#: future that will only resolve when the pool is rebuilt.
HARVEST_TIMEOUT = 1.0

#: Longest ``shutdown`` waits for in-flight jobs before abandoning them.
SHUTDOWN_TIMEOUT = 30.0


def job_payload(
    job,
    path_1: str,
    path_2: str,
    deadline: float | None = None,
    telemetry: dict | None = None,
) -> dict:
    """The picklable recipe for ``job`` with log names resolved to paths.

    ``deadline`` is the effective wall-clock budget (the job's own, or
    the service default) — carried in the payload so the parent-side
    enforcement travels with the recipe through retries.  ``telemetry``
    (from :meth:`~repro.obs.telemetry.TelemetryHub.attempt_payload`)
    carries the trace id, attempt number and spool directory into the
    worker; ``None`` keeps the recipe — and the execution path — byte-
    identical to a telemetry-free build.
    """
    payload = {
        "paths": (str(path_1), str(path_2)),
        "patterns": list(job.patterns),
        "method": job.method,
        "node_budget": job.node_budget,
        "time_budget": job.time_budget,
        "strict": job.strict,
        "degraded_fallback": job.degraded_fallback,
        "workers": job.workers,
        "blocking": job.blocking,
        "deadline": deadline if deadline is not None else job.deadline,
    }
    if telemetry is not None:
        payload["telemetry"] = telemetry
    return payload


def execute_match_job(payload: dict) -> dict:
    """Rebuild a task from its recipe, run the matcher, serialize the result.

    Runs in a worker process (or inline); must stay importable at module
    level and touch only picklable state.  When the payload carries a
    ``telemetry`` dict a :class:`~repro.obs.telemetry.WorkerTelemetry`
    session spools spans and counts metrics around the run, and its
    summary rides home under the result's ``"telemetry"`` key; without
    one the matcher runs under the null probe exactly as before.
    """
    session = None
    telemetry_cfg = payload.get("telemetry")
    if telemetry_cfg:
        try:
            session = WorkerTelemetry.from_payload(telemetry_cfg)
            set_active_session(session)
        except OSError:
            session = None  # an unwritable spool dir must not fail the job
    try:
        path_1, path_2 = payload["paths"]
        spec = TaskSpec.from_files(path_1, path_2, patterns=payload["patterns"])
        task = spec.build()
        matcher = EventMatcher(task.log_1, task.log_2, patterns=task.patterns)
        run_options = dict(
            method=payload.get("method", "pattern-tight"),
            node_budget=payload.get("node_budget"),
            time_budget=payload.get("time_budget"),
            strict=payload.get("strict", False),
            degraded_fallback=payload.get("degraded_fallback"),
            workers=payload.get("workers", 1),
            blocking=payload.get("blocking"),
        )
        if session is not None:
            run_options["probe"] = session.probe
        result = matcher.run(**run_options)
    except BaseException:
        # Close the spool so the merged trace shows where the attempt
        # died (SIGKILL skips this, but the per-span flush already left
        # the completed prefix on disk).
        if session is not None:
            session.finish(status="error")
            set_active_session(None)
        raise
    serialized = serialize_result(result)
    if session is not None:
        serialized["telemetry"] = session.finish(status="ok")
        set_active_session(None)
    return serialized


def serialize_result(result: MatchResult) -> dict:
    """A :class:`MatchResult` as the JSON document the API serves."""
    return {
        "method": result.method,
        "mapping": {
            str(source): str(target)
            for source, target in sorted(result.mapping.as_dict().items())
        },
        "score": result.score,
        "degraded": result.degraded,
        "gap": result.gap,
        "elapsed_seconds": result.elapsed_seconds,
        "stats": {
            "processed_mappings": result.stats.processed_mappings,
            "expanded_nodes": result.stats.expanded_nodes,
        },
    }


@dataclass(frozen=True)
class JobOutcome:
    """One harvested job attempt, classified for the retry policy.

    ``kind`` is one of ``"ok"`` / ``"error"`` (the recipe raised) /
    ``"crash"`` (the worker died under the job) / ``"deadline"`` (the
    attempt outlived its wall-clock budget and was abandoned).
    """

    job_id: str
    kind: str
    result: dict | None = None
    error: str | None = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.kind == OUTCOME_OK


@dataclass(frozen=True)
class _InFlight:
    job_id: str
    payload: dict
    started: float


class WorkerPool:
    """Run job recipes inline or across supervised worker processes.

    The daemon loop drives it with two calls: :meth:`submit` hands over
    a claimed job's recipe, :meth:`completed` harvests finished ones as
    :class:`JobOutcome` records without blocking indefinitely — even a
    blocking harvest is bounded by :data:`HARVEST_TIMEOUT`, because a
    SIGKILLed worker must surface as a ``crash`` outcome, not a hung
    scheduler.  Inline mode executes during :meth:`submit` and queues
    the outcome for the next harvest, so the loop's control flow is
    identical in both modes.
    """

    def __init__(self, processes: int = 0, probe: Probe | None = None):
        if processes < 0:
            raise ValueError("processes must be non-negative")
        self.processes = processes
        self.probe = probe if probe is not None else NULL_PROBE
        if processes:
            reused = current_warm_pool() is not None
            self._pool = get_warm_pool(processes)
            if self.probe.enabled:
                self.probe.on_pool_event(reused, self._pool.workers)
        else:
            self._pool = None
        self._futures: dict = {}  # future -> _InFlight
        self._done: list[JobOutcome] = []
        #: Executor rebuilds this pool performed (mirrored by the daemon
        #: into RecoveryStats.workers_respawned).
        self.respawns = 0
        #: Job ids abandoned by :meth:`shutdown`'s bounded drain.
        self.abandoned: list[str] = []

    @property
    def active(self) -> int:
        """Jobs submitted but not yet harvested."""
        return len(self._futures) + len(self._done)

    def worker_pids(self) -> list[int]:
        """Live worker pids (empty in inline mode) — the chaos surface."""
        return self._pool.worker_pids() if self._pool is not None else []

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, job_id: str, payload: dict) -> None:
        if self._pool is None:
            started = time.perf_counter()
            try:
                result = execute_match_job(payload)
                outcome = JobOutcome(job_id, OUTCOME_OK, result=result)
            # SystemExit included: file loaders exit on missing paths,
            # and an inline job must never take the daemon down with it.
            except (Exception, SystemExit) as error:  # noqa: BLE001
                outcome = JobOutcome(
                    job_id, OUTCOME_ERROR, error=_describe(error)
                )
            elapsed = time.perf_counter() - started
            deadline = payload.get("deadline")
            if outcome.ok and deadline is not None and elapsed > deadline:
                # Inline mode cannot interrupt a running job, but the
                # contract must not silently differ from pool mode: an
                # over-deadline attempt is a deadline failure either way.
                outcome = JobOutcome(
                    job_id,
                    OUTCOME_DEADLINE,
                    error=_deadline_error(elapsed, deadline),
                )
            self._done.append(
                JobOutcome(
                    outcome.job_id,
                    outcome.kind,
                    result=outcome.result,
                    error=outcome.error,
                    elapsed_seconds=elapsed,
                )
            )
            return
        started = time.perf_counter()
        try:
            future = self._pool.submit(execute_match_job, payload)
        except BrokenProcessPool:
            # The pool died between harvests (e.g. a worker was killed
            # while idle).  Sweep the broken executor's in-flight
            # futures *now* — left behind, they would resolve as
            # BrokenProcessPool on the next harvest and trigger a second
            # respawn that crash-classifies jobs freshly submitted to
            # the healthy rebuild.  Then rebuild and submit on the fresh
            # executor; a second refusal means the environment cannot
            # spawn workers at all, which is a crash outcome, not a
            # daemon crash.
            self._done.extend(
                self._fail_over("worker pool broke (worker died)")
            )
            self._respawn("submit-broken")
            try:
                future = self._pool.submit(execute_match_job, payload)
            except BrokenProcessPool as error:
                self._done.append(
                    JobOutcome(job_id, OUTCOME_CRASH, error=_describe(error))
                )
                return
        self._futures[future] = _InFlight(job_id, payload, started)

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------
    def completed(self, block: bool = False) -> list[JobOutcome]:
        """Harvest finished attempts; ``block`` waits (boundedly) for one."""
        harvested = list(self._done)
        self._done.clear()
        harvested.extend(self._check_deadlines())
        if self._futures:
            timeout = HARVEST_TIMEOUT if (block and not harvested) else 0
            finished, _ = wait(
                self._futures, timeout=timeout, return_when=FIRST_COMPLETED
            )
            pool_broke = False
            for future in finished:
                outcome = self._harvest_one(future, self._futures.pop(future))
                # A done future only yields ``crash`` when its executor
                # broke, so the kind doubles as the rebuild signal.
                pool_broke = pool_broke or outcome.kind == OUTCOME_CRASH
                harvested.append(outcome)
            if pool_broke:
                # A broken executor resolves *all* futures exceptionally,
                # so any stragglers surface as crashes too; fail them
                # over now and rebuild once.
                harvested.extend(
                    self._fail_over("worker pool broke (worker died)")
                )
                self._respawn("worker-death", kill_workers=False)
        return harvested

    def _harvest_one(self, future, flight: _InFlight) -> JobOutcome:
        """Classify one finished future (``future.done()`` must hold)."""
        elapsed = time.perf_counter() - flight.started
        try:
            return JobOutcome(
                flight.job_id,
                OUTCOME_OK,
                result=future.result(),
                elapsed_seconds=elapsed,
            )
        except BrokenProcessPool as error:
            return JobOutcome(
                flight.job_id,
                OUTCOME_CRASH,
                error=_describe(error),
                elapsed_seconds=elapsed,
            )
        except (Exception, SystemExit) as error:  # noqa: BLE001
            return JobOutcome(
                flight.job_id,
                OUTCOME_ERROR,
                error=_describe(error),
                elapsed_seconds=elapsed,
            )

    def _check_deadlines(self) -> list[JobOutcome]:
        """Abandon in-flight attempts that outlived their deadline.

        The runaway worker is still computing; the only way to reclaim
        it without cooperative cancellation (which a wedged worker by
        definition cannot offer) is to rebuild the pool, so every other
        in-flight job fails over to the crash path and retries on the
        fresh executor.
        """
        now = time.perf_counter()
        expired = [
            (future, flight)
            for future, flight in self._futures.items()
            if flight.payload.get("deadline") is not None
            and now - flight.started > flight.payload["deadline"]
            and not future.done()
        ]
        if not expired:
            return []
        outcomes = []
        for future, flight in expired:
            self._futures.pop(future, None)
            outcomes.append(
                JobOutcome(
                    flight.job_id,
                    OUTCOME_DEADLINE,
                    error=_deadline_error(
                        now - flight.started, flight.payload["deadline"]
                    ),
                    elapsed_seconds=now - flight.started,
                )
            )
        outcomes.extend(
            self._fail_over("pool rebuilt to reclaim an over-deadline worker")
        )
        self._respawn("deadline", kill_workers=True)
        return outcomes

    def _fail_over(self, reason: str) -> list[JobOutcome]:
        """Sweep the in-flight set: harvest finished futures for real,
        fail the genuinely-running rest over to ``crash`` outcomes.

        Harvesting first matters — a future whose result is ready but
        not yet collected (say it finished just as an unrelated job
        blew its deadline) must keep its genuine outcome instead of
        being reported as a casualty of the rebuild, which would both
        discard a computed result and spuriously push its job toward
        the poison threshold.
        """
        outcomes = [
            self._harvest_one(future, self._futures.pop(future))
            for future in [f for f in self._futures if f.done()]
        ]
        now = time.perf_counter()
        outcomes.extend(
            JobOutcome(
                flight.job_id,
                OUTCOME_CRASH,
                error=f"in-flight when {reason}",
                elapsed_seconds=now - flight.started,
            )
            for flight in self._futures.values()
        )
        self._futures.clear()
        return outcomes

    def _respawn(self, reason: str, kill_workers: bool = False) -> None:
        self._pool.respawn(kill_workers=kill_workers)
        self.respawns += 1
        if self.probe.enabled:
            self.probe.on_pool_respawn(self._pool.workers, reason)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = SHUTDOWN_TIMEOUT) -> list[str]:
        """Drain in-flight jobs boundedly; report the abandoned ones.

        The warm pool is the process-wide singleton and deliberately
        survives daemon shutdown — that persistence is what makes
        restarts cheap.  But the *drain* must be bounded: a worker that
        died mid-job leaves a future that never resolves, and a daemon
        that waits on it forever turns one worker death into an
        unkillable shutdown.  Jobs still unfinished after ``timeout``
        seconds are abandoned (they re-queue from the manifest on the
        next ``--resume``) and their ids returned.
        """
        self.abandoned = []
        if self._pool is not None and self._futures:
            _done, not_done = wait(list(self._futures), timeout=timeout)
            self.abandoned = sorted(
                self._futures[future].job_id for future in not_done
            )
            self._futures.clear()
        return self.abandoned


def _describe(error: BaseException) -> str:
    """One-line error description plus the innermost frame for triage."""
    tail = traceback.extract_tb(error.__traceback__)
    where = f" at {tail[-1].filename}:{tail[-1].lineno}" if tail else ""
    return f"{type(error).__name__}: {error}{where}"


def _deadline_error(elapsed: float, deadline: float) -> str:
    return (
        f"deadline exceeded: attempt ran {elapsed:.3f}s "
        f"against a {deadline:.3f}s wall-clock budget"
    )
