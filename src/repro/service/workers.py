"""Job execution: the picklable recipe boundary and the worker pool.

A match job crosses the process boundary as a plain dict (spool paths,
pattern texts, matcher options) and comes back as a plain dict (mapping,
score, gap, search counters).  :func:`execute_match_job` is the
module-level function both sides agree on — it rebuilds the task with
:meth:`repro.parallel.sweep.TaskSpec.from_files` exactly as the sweep
workers do, so the daemon inherits the same determinism guarantee: a
job's result is a pure function of its recipe.

:class:`WorkerPool` runs those recipes either **inline** (``processes=0``
— synchronous, in-process; the deterministic mode used by tests, the CI
smoke job, and ``repro serve --workers 0``) or on the persistent
:class:`~repro.parallel.pool.WarmPool` shared with the parallel search
layer.  Inline mode is not a toy: because results are produced by the
same function either way, switching modes cannot change any job's
output, only its latency.  Riding the warm pool means a daemon restart
in the same process (tests, embedded use) reuses live workers instead
of respawning, and daemon jobs share the workers' model caches with any
``parallel_match`` calls in the same process.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, wait

from repro.core.matcher import EventMatcher, MatchResult
from repro.obs.probe import NULL_PROBE, Probe
from repro.parallel.pool import current_warm_pool, get_warm_pool
from repro.parallel.sweep import TaskSpec


def job_payload(job, path_1: str, path_2: str) -> dict:
    """The picklable recipe for ``job`` with log names resolved to paths."""
    return {
        "paths": (str(path_1), str(path_2)),
        "patterns": list(job.patterns),
        "method": job.method,
        "node_budget": job.node_budget,
        "time_budget": job.time_budget,
        "strict": job.strict,
        "degraded_fallback": job.degraded_fallback,
        "workers": job.workers,
    }


def execute_match_job(payload: dict) -> dict:
    """Rebuild a task from its recipe, run the matcher, serialize the result.

    Runs in a worker process (or inline); must stay importable at module
    level and touch only picklable state.
    """
    path_1, path_2 = payload["paths"]
    spec = TaskSpec.from_files(path_1, path_2, patterns=payload["patterns"])
    task = spec.build()
    matcher = EventMatcher(task.log_1, task.log_2, patterns=task.patterns)
    result = matcher.run(
        method=payload.get("method", "pattern-tight"),
        node_budget=payload.get("node_budget"),
        time_budget=payload.get("time_budget"),
        strict=payload.get("strict", False),
        degraded_fallback=payload.get("degraded_fallback"),
        workers=payload.get("workers", 1),
    )
    return serialize_result(result)


def serialize_result(result: MatchResult) -> dict:
    """A :class:`MatchResult` as the JSON document the API serves."""
    return {
        "method": result.method,
        "mapping": {
            str(source): str(target)
            for source, target in sorted(result.mapping.as_dict().items())
        },
        "score": result.score,
        "degraded": result.degraded,
        "gap": result.gap,
        "elapsed_seconds": result.elapsed_seconds,
        "stats": {
            "processed_mappings": result.stats.processed_mappings,
            "expanded_nodes": result.stats.expanded_nodes,
        },
    }


class WorkerPool:
    """Run job recipes inline or across worker processes.

    The daemon loop drives it with two calls: :meth:`submit` hands over
    a claimed job's recipe, :meth:`completed` harvests finished ones as
    ``(job_id, result, error, elapsed_seconds)`` tuples without
    blocking.  Inline mode executes during :meth:`submit` and queues the
    outcome for the next harvest, so the loop's control flow is
    identical in both modes.
    """

    def __init__(self, processes: int = 0, probe: Probe | None = None):
        if processes < 0:
            raise ValueError("processes must be non-negative")
        self.processes = processes
        self.probe = probe if probe is not None else NULL_PROBE
        if processes:
            reused = current_warm_pool() is not None
            self._pool = get_warm_pool(processes)
            if self.probe.enabled:
                self.probe.on_pool_event(reused, self._pool.workers)
        else:
            self._pool = None
        self._futures: dict = {}  # future -> (job_id, submitted_at)
        self._done: list[tuple[str, dict | None, str | None, float]] = []

    @property
    def active(self) -> int:
        """Jobs submitted but not yet harvested."""
        return len(self._futures) + len(self._done)

    def submit(self, job_id: str, payload: dict) -> None:
        if self._pool is None:
            started = time.perf_counter()
            try:
                result = execute_match_job(payload)
                outcome = (job_id, result, None)
            # SystemExit included: file loaders exit on missing paths,
            # and an inline job must never take the daemon down with it.
            except (Exception, SystemExit) as error:  # noqa: BLE001
                outcome = (job_id, None, _describe(error))
            self._done.append((*outcome, time.perf_counter() - started))
            return
        future = self._pool.submit(execute_match_job, payload)
        self._futures[future] = (job_id, time.perf_counter())

    def completed(
        self, block: bool = False
    ) -> list[tuple[str, dict | None, str | None, float]]:
        """Harvest finished jobs; with ``block`` wait for at least one."""
        harvested = list(self._done)
        self._done.clear()
        if self._futures:
            timeout = None if (block and not harvested) else 0
            finished, _ = wait(
                self._futures, timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in finished:
                job_id, started = self._futures.pop(future)
                elapsed = time.perf_counter() - started
                try:
                    harvested.append((job_id, future.result(), None, elapsed))
                except (Exception, SystemExit) as error:  # noqa: BLE001
                    harvested.append((job_id, None, _describe(error), elapsed))
        return harvested

    def shutdown(self) -> None:
        """Drain in-flight jobs; leave the shared warm pool running.

        The pool is the process-wide singleton and deliberately survives
        daemon shutdown — that persistence is what makes restarts cheap.
        :func:`repro.parallel.pool.close_warm_pool` tears it down when a
        process really is done with parallel work.
        """
        if self._pool is not None and self._futures:
            wait(list(self._futures))
            self._futures.clear()


def _describe(error: BaseException) -> str:
    """One-line error description plus the innermost frame for triage."""
    tail = traceback.extract_tb(error.__traceback__)
    where = f" at {tail[-1].filename}:{tail[-1].lineno}" if tail else ""
    return f"{type(error).__name__}: {error}{where}"
