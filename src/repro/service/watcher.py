"""Watched-directory ingestion: drop a log file, get a registered log.

The operational front door of the daemon: operators (or upstream
systems) drop CSV/XES event-log files into ``<state>/drop`` and the
:class:`DirectoryWatcher` polls it, registering each file under its stem
name.  Three disciplines keep this safe against the ways file drops go
wrong in practice:

* **settling** — a file is only ingested once its size and mtime have
  been stable across ``settle_polls`` consecutive polls, so a file still
  being copied in is never half-read;
* **row quarantine** — malformed rows inside an otherwise-readable CSV
  are skipped and recorded in the service's dead-letter store (the
  existing ``on_error="quarantine"`` reader path), not fatal;
* **file quarantine** — a file that cannot be read at all (unparseable
  XES, missing CSV header columns, zero usable traces, unsupported
  extension) is *moved* to ``<state>/drop/quarantine/`` and recorded
  with its reason, so a poisoned file cannot wedge the watcher by being
  re-ingested every poll;
* **transient-error grace** — a raw ``OSError`` during the read (NFS
  hiccup, permissions race with the copying process) gets exactly one
  retry on the next poll before the file is quarantined, because an I/O
  blip is not evidence the *content* is bad.

Successfully ingested files are deleted from the drop directory — the
canonical copy now lives in the registry spool.
"""

from __future__ import annotations

from pathlib import Path

from repro.log.csvio import read_csv
from repro.log.errors import LogReadError
from repro.log.eventlog import EventLog
from repro.log.xes import read_xes
from repro.obs.logs import bind, get_logger
from repro.obs.probe import NULL_PROBE, Probe
from repro.obs.telemetry import new_trace_id
from repro.resilience.quarantine import QuarantineRecord, QuarantineStore
from repro.service.registry import LogRegistry, validate_log_name

#: File extensions the watcher picks up, lowercase.
WATCHED_SUFFIXES = (".csv", ".xes")

logger = get_logger("service.watcher")


class DirectoryWatcher:
    """Poll a drop directory and register every settled log file.

    Parameters
    ----------
    drop_dir:
        The watched directory (created if missing, along with its
        ``quarantine/`` subdirectory).
    registry:
        Where readable logs are registered (named by file stem).
    quarantine:
        Dead-letter store receiving both row-level skips and whole-file
        rejects.
    settle_polls:
        Consecutive polls a file's size+mtime must be unchanged before
        it is ingested.  ``0`` ingests on first sight (tests, CI smoke);
        the daemon default of ``1`` tolerates slow copies.
    probe:
        Observability hooks (``repro_service_files_total`` by outcome).
    """

    def __init__(
        self,
        drop_dir: str | Path,
        registry: LogRegistry,
        quarantine: QuarantineStore,
        settle_polls: int = 1,
        probe: Probe | None = None,
    ):
        if settle_polls < 0:
            raise ValueError("settle_polls must be non-negative")
        self.drop_dir = Path(drop_dir)
        self.quarantine_dir = self.drop_dir / "quarantine"
        self.drop_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self.registry = registry
        self.quarantine = quarantine
        self.settle_polls = settle_polls
        self._probe = probe if probe is not None else NULL_PROBE
        #: path -> (size, mtime_ns, stable_poll_count)
        self._seen: dict[Path, tuple[int, int, int]] = {}
        #: Paths that already burned their one transient-OSError retry.
        self._io_retried: set[Path] = set()
        self.files_registered = 0
        self.files_quarantined = 0
        self.io_retries = 0

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def poll(self) -> list[str]:
        """One scan of the drop directory; returns names registered now."""
        registered: list[str] = []
        present: set[Path] = set()
        for path in sorted(self.drop_dir.iterdir()):
            if not path.is_file():
                continue
            present.add(path)
            if not self._settled(path):
                continue
            self._seen.pop(path, None)
            name = self._ingest(path)
            if name is not None:
                registered.append(name)
        # Forget files that vanished before settling.
        for path in [p for p in self._seen if p not in present]:
            del self._seen[path]
        self._io_retried &= present
        return registered

    def _settled(self, path: Path) -> bool:
        try:
            stat = path.stat()
        except OSError:
            return False  # vanished between listing and stat
        signature = (stat.st_size, stat.st_mtime_ns)
        size, mtime_ns, stable = self._seen.get(path, (None, None, -1))
        if (size, mtime_ns) != signature:
            self._seen[path] = (*signature, 0)
            return self.settle_polls == 0
        if stable + 1 >= self.settle_polls:
            return True
        self._seen[path] = (*signature, stable + 1)
        return False

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _ingest(self, path: Path) -> str | None:
        # Every watched file gets its own trace id so downstream jobs
        # against the registered log can be correlated back to the drop.
        with bind(trace_id=new_trace_id(), file=path.name):
            return self._ingest_traced(path)

    def _ingest_traced(self, path: Path) -> str | None:
        try:
            log = self._read(path)
            name = validate_log_name(path.stem)
            if not len(log):
                raise LogReadError(
                    f"{path.name}: no usable traces "
                    "(empty file, or every row quarantined)"
                )
        except OSError as error:
            # LogReadError is a ValueError, so a raw OSError here is a
            # genuine I/O failure, not bad content.  Leave the file in
            # place for one retry on the next poll; quarantine only a
            # repeat offender.
            if path not in self._io_retried:
                self._io_retried.add(path)
                self.io_retries += 1
                logger.warning(
                    "transient read error, will retry once",
                    extra={"error": str(error)},
                )
                if self._probe.enabled:
                    self._probe.on_file_ingested("io-retry")
                return None
            self._io_retried.discard(path)
            self._quarantine_file(path, error)
            return None
        except Exception as error:  # noqa: BLE001 — the dead-letter seam
            self._quarantine_file(path, error)
            return None
        self._io_retried.discard(path)
        self.registry.register(name, log, source="drop")
        path.unlink(missing_ok=True)
        self.files_registered += 1
        logger.info(
            "log file ingested",
            extra={"log": name, "traces": len(log)},
        )
        if self._probe.enabled:
            self._probe.on_file_ingested("registered")
        return name

    def _read(self, path: Path) -> EventLog:
        suffix = path.suffix.lower()
        if suffix == ".csv":
            return read_csv(
                path,
                name=path.stem,
                on_error="quarantine",
                quarantine=self.quarantine,
            )
        if suffix == ".xes":
            return read_xes(
                path,
                name=path.stem,
                on_error="quarantine",
                quarantine=self.quarantine,
            )
        raise LogReadError(
            f"unsupported log format {path.suffix!r} "
            f"(expected one of {', '.join(WATCHED_SUFFIXES)})"
        )

    def _quarantine_file(self, path: Path, error: Exception) -> None:
        self.quarantine.add(
            QuarantineRecord(
                kind="file",
                reason=f"{type(error).__name__}: {error}",
                case_id=None,
                events=(),
                source=str(path.name),
            )
        )
        target = self.quarantine_dir / path.name
        counter = 0
        while target.exists():
            counter += 1
            target = self.quarantine_dir / f"{path.name}.{counter}"
        try:
            path.replace(target)
        except OSError:
            path.unlink(missing_ok=True)
        self.files_quarantined += 1
        logger.warning(
            "log file quarantined",
            extra={"reason": f"{type(error).__name__}: {error}"},
        )
        if self._probe.enabled:
            self._probe.on_file_ingested("quarantined")
