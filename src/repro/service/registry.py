"""Named event logs the service can match against.

Every log the daemon knows — dropped into the watch directory, POSTed
over the API, or restored from a manifest — is *spooled*: written once
as a canonical CSV under the service state directory and registered
under a name.  The spool file is the source of truth, which buys three
properties at once:

* worker processes receive a :class:`~repro.parallel.sweep.TaskSpec`
  file recipe (two paths + pattern texts) instead of pickled logs;
* a restart re-registers every log from its spool file — the manifest
  only records names and metadata;
* two ingestion formats (CSV and XES) collapse into one internal form,
  so everything downstream of registration is format-blind.

The in-process :class:`~repro.log.eventlog.EventLog` view is cached per
name and invalidated on re-registration.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.log.csvio import read_csv, write_csv
from repro.log.eventlog import EventLog

_NAME_OK = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


class UnknownLogError(KeyError):
    """A job or session referenced a log name that is not registered."""


def validate_log_name(name: str) -> str:
    """A registry name must be a safe spool-file stem; returns it."""
    if not isinstance(name, str) or not _NAME_OK.match(name):
        raise ValueError(
            f"invalid log name {name!r}: expected 1-128 characters of "
            "letters, digits, '.', '_' or '-', not starting with a dot"
        )
    return name


@dataclass(frozen=True)
class RegisteredLog:
    """Metadata of one spooled log (what ``GET /logs`` returns)."""

    name: str
    path: str
    num_traces: int
    num_events: int
    source: str
    sequence: int

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "num_traces": self.num_traces,
            "num_events": self.num_events,
            "source": self.source,
            "sequence": self.sequence,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RegisteredLog":
        return cls(
            name=payload["name"],
            path=payload["path"],
            num_traces=payload["num_traces"],
            num_events=payload["num_events"],
            source=payload.get("source", "resume"),
            sequence=payload.get("sequence", 0),
        )


class LogRegistry:
    """Thread-safe name → spooled-log mapping.

    Parameters
    ----------
    spool_dir:
        Directory the canonical CSVs live in (created if missing).
    """

    def __init__(self, spool_dir: str | Path):
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self._logs: dict[str, RegisteredLog] = {}
        self._cache: dict[str, EventLog] = {}
        self._sequence = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, log: EventLog, source: str = "api"
    ) -> RegisteredLog:
        """Spool ``log`` as a canonical CSV and register it under ``name``.

        Re-registering an existing name replaces it (a re-dropped file
        is an update); already-submitted jobs resolve names at dispatch
        time, so they see whatever is registered then.
        """
        validate_log_name(name)
        if not len(log):
            raise ValueError(f"log {name!r} has no traces; refusing to register")
        path = self.spool_dir / f"{name}.csv"
        write_csv(log, path)
        with self._lock:
            self._sequence += 1
            entry = RegisteredLog(
                name=name,
                path=str(path),
                num_traces=len(log),
                num_events=sum(len(trace) for trace in log.traces),
                source=source,
                sequence=self._sequence,
            )
            self._logs[name] = entry
            self._cache[name] = log
        return entry

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def info(self, name: str) -> RegisteredLog:
        with self._lock:
            entry = self._logs.get(name)
        if entry is None:
            raise UnknownLogError(f"no registered log named {name!r}")
        return entry

    def get(self, name: str) -> EventLog:
        """The in-process view of a registered log (cached per name)."""
        entry = self.info(name)
        with self._lock:
            log = self._cache.get(name)
        if log is None:
            log = read_csv(entry.path, name=name)
            with self._lock:
                self._cache[name] = log
        return log

    def path(self, name: str) -> str:
        """The spool-file path workers rebuild the log from."""
        return self.info(name).path

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._logs)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._logs

    def __len__(self) -> int:
        with self._lock:
            return len(self._logs)

    # ------------------------------------------------------------------
    # Manifest round-trip
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        with self._lock:
            return {
                "sequence": self._sequence,
                "logs": [
                    self._logs[name].to_payload() for name in sorted(self._logs)
                ],
            }

    def scan_spool(self) -> int:
        """Register any spool CSV the registry does not know about.

        The safety net under manifest loss: spool files are written
        before the manifest ever mentions them, so a crash between the
        two must not orphan a log.  Returns how many were recovered.
        """
        recovered = 0
        for path in sorted(self.spool_dir.glob("*.csv")):
            name = path.stem
            if name in self:
                continue
            try:
                log = read_csv(path, name=name)
            except Exception:  # noqa: BLE001 — a bad spool file is skipped
                continue
            if not len(log):
                continue
            self.register(name, log, source="spool-scan")
            recovered += 1
        return recovered

    def restore_payload(self, payload: dict) -> int:
        """Re-register every manifest entry whose spool file survived.

        Returns how many were restored; entries whose file is gone are
        skipped (the caller reports them), never fatal — a service must
        come back up with whatever state is intact.
        """
        restored = 0
        for entry_payload in payload.get("logs", ()):
            entry = RegisteredLog.from_payload(entry_payload)
            if not Path(entry.path).exists():
                continue
            with self._lock:
                self._logs[entry.name] = entry
                self._cache.pop(entry.name, None)
                self._sequence = max(self._sequence, entry.sequence)
            restored += 1
        with self._lock:
            self._sequence = max(
                self._sequence, payload.get("sequence", self._sequence)
            )
        return restored
