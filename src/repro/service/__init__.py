"""Matching-as-a-service: a long-running daemon around the matchers.

The batch pipeline (``repro match``) answers one question and exits;
real deployments instead keep logs arriving and questions recurring.
This package turns the existing engines into a small service:

* :mod:`~repro.service.registry` — named logs, spooled as canonical CSVs;
* :mod:`~repro.service.watcher` — watched drop directory with settling
  and file-level quarantine;
* :mod:`~repro.service.jobs` / :mod:`~repro.service.workers` — a
  thread-safe job queue over a process pool (or inline executor) running
  picklable job recipes;
* :mod:`~repro.service.sessions` — in-daemon online matching sessions
  with checkpoint persistence;
* :mod:`~repro.service.api` — a stdlib HTTP surface (JSON + Prometheus);
* :mod:`~repro.service.daemon` — :class:`MatchingService`, the object
  wiring it all together, with ``save_state``/``resume`` kill-safety.

Start one with ``repro serve STATE_DIR`` (see ``--help``), or embed
:class:`MatchingService` directly — every test drives it in-process.
"""

from repro.service.api import ServiceAPI
from repro.service.daemon import MatchingService
from repro.service.jobs import JobQueue, MatchJob, UnknownJobError
from repro.service.registry import (
    LogRegistry,
    RegisteredLog,
    UnknownLogError,
    validate_log_name,
)
from repro.service.sessions import SessionManager, UnknownSessionError
from repro.service.watcher import DirectoryWatcher
from repro.service.workers import WorkerPool, execute_match_job

__all__ = [
    "DirectoryWatcher",
    "JobQueue",
    "LogRegistry",
    "MatchJob",
    "MatchingService",
    "RegisteredLog",
    "ServiceAPI",
    "SessionManager",
    "UnknownJobError",
    "UnknownLogError",
    "UnknownSessionError",
    "WorkerPool",
    "execute_match_job",
    "validate_log_name",
]
