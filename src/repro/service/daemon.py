"""The matching daemon: one object wiring watcher, queue, pool, sessions.

:class:`MatchingService` owns a state directory::

    <state>/
      drop/             watched; operators drop .csv/.xes files here
      drop/quarantine/  unreadable dropped files, moved aside
      spool/            canonical CSVs of every registered log
      sessions/         one versioned checkpoint per online session
      quarantine.jsonl  spill-to-disk dead letters (rows, traces, files)
      manifest.json     registry + job queue + service metadata

and exposes exactly three verbs the rest of the package builds on:

* :meth:`tick` — one scheduling round: poll the drop directory,
  dispatch queued jobs to the worker pool, harvest finished ones.
  Everything the daemon does between HTTP requests is some number of
  ticks; tests and the CI smoke drive ticks directly for determinism.
* :meth:`save_state` — manifest + session checkpoints, atomically.
* :meth:`resume` — rebuild the whole service from a state directory:
  spooled logs re-register, DONE/FAILED jobs return as history, killed
  RUNNING jobs re-queue, sessions restore from their checkpoints.

The kill-and-resume contract: ``save_state`` followed by process death
followed by ``resume`` on a fresh instance reaches the same mappings
and scores as never having died.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import ObservabilityProbe, Probe
from repro.resilience.quarantine import QuarantineStore
from repro.service.jobs import JobQueue, MatchJob
from repro.service.registry import LogRegistry, UnknownLogError
from repro.service.sessions import SessionManager
from repro.service.watcher import DirectoryWatcher
from repro.service.workers import WorkerPool, job_payload

MANIFEST_FORMAT = "repro-service-manifest"
MANIFEST_VERSION = 1


class MatchingService:
    """Matching-as-a-service over one state directory.

    Parameters
    ----------
    state_dir:
        Root of all service state (created if missing).
    processes:
        Worker processes for match jobs; ``0`` executes jobs inline in
        the daemon thread (deterministic, the test/CI mode).
    settle_polls:
        Stability polls the watcher requires before ingesting a dropped
        file (``0`` = ingest on sight).
    checkpoint_every:
        Seconds between periodic :meth:`save_state` calls from
        :meth:`tick`; ``None`` saves only on shutdown/demand.
    probe:
        Pass an existing probe to share a registry; by default the
        service builds its own :class:`ObservabilityProbe` so
        ``/metrics`` always has content.
    """

    def __init__(
        self,
        state_dir: str | Path,
        processes: int = 0,
        settle_polls: int = 0,
        checkpoint_every: float | None = 30.0,
        probe: Probe | None = None,
    ):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        if probe is None:
            probe = ObservabilityProbe(metrics=MetricsRegistry())
        self.probe = probe
        self.quarantine = QuarantineStore(
            spill_path=self.state_dir / "quarantine.jsonl"
        )
        self.registry = LogRegistry(self.state_dir / "spool")
        self.watcher = DirectoryWatcher(
            self.state_dir / "drop",
            self.registry,
            self.quarantine,
            settle_polls=settle_polls,
            probe=probe,
        )
        self.jobs = JobQueue(probe=probe)
        self.pool = WorkerPool(processes=processes, probe=probe)
        self.sessions = SessionManager(
            self.registry,
            self.state_dir / "sessions",
            quarantine=self.quarantine,
            probe=probe,
        )
        self.checkpoint_every = checkpoint_every
        self._last_save = time.monotonic()
        self._manifest_lock = threading.Lock()
        self.started_at = time.time()
        self.ticks = 0

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    def tick(self) -> dict:
        """One scheduling round; returns what it did (for tests/logs)."""
        self.ticks += 1
        registered = self.watcher.poll()
        dispatched = self._dispatch()
        finished = self._harvest()
        if (
            self.checkpoint_every is not None
            and time.monotonic() - self._last_save >= self.checkpoint_every
        ):
            self.save_state()
        return {
            "registered": registered,
            "dispatched": dispatched,
            "finished": finished,
        }

    def run_until_idle(self, max_ticks: int = 10_000) -> int:
        """Tick until no queued/running jobs remain; returns tick count.

        With worker processes this busy-waits between harvests with a
        short sleep; inline pools complete within the dispatching tick.
        """
        spent = 0
        while self.jobs.depth > 0 or self.pool.active > 0:
            spent += 1
            if spent > max_ticks:
                raise RuntimeError(
                    f"service did not go idle within {max_ticks} ticks"
                )
            outcome = self.tick()
            if self.pool.processes and not outcome["finished"]:
                time.sleep(0.02)
        return spent

    def _dispatch(self) -> list[str]:
        dispatched = []
        while True:
            job = self.jobs.claim_next()
            if job is None:
                break
            try:
                payload = job_payload(
                    job,
                    self.registry.path(job.log_1),
                    self.registry.path(job.log_2),
                )
            except UnknownLogError as error:
                self.jobs.fail(job.job_id, f"UnknownLogError: {error}")
                continue
            self.pool.submit(job.job_id, payload)
            dispatched.append(job.job_id)
        return dispatched

    def _harvest(self) -> list[str]:
        finished = []
        for job_id, result, error, elapsed in self.pool.completed():
            if error is None:
                self.jobs.finish(job_id, result, elapsed)
            else:
                self.jobs.fail(job_id, error, elapsed)
            finished.append(job_id)
        return finished

    # ------------------------------------------------------------------
    # Submission facade (used by the API layer and tests)
    # ------------------------------------------------------------------
    def submit_job(self, log_1: str, log_2: str, **options) -> MatchJob:
        """Validate log names exist now, then queue the job."""
        for name in (log_1, log_2):
            self.registry.info(name)  # raises UnknownLogError
        return self.jobs.submit(log_1, log_2, **options)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.state_dir / "manifest.json"

    def save_state(self) -> Path:
        """Write the manifest and checkpoint every session, atomically."""
        with self._manifest_lock:
            self.sessions.checkpoint_all()
            document = {
                "format": MANIFEST_FORMAT,
                "version": MANIFEST_VERSION,
                "registry": self.registry.to_payload(),
                "jobs": self.jobs.to_payload(),
                "quarantine": self.quarantine.to_payload(),
            }
            temp = self.manifest_path.with_suffix(".json.tmp")
            temp.write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
            os.replace(temp, self.manifest_path)
        self._last_save = time.monotonic()
        return self.manifest_path

    def resume(self) -> dict:
        """Restore registry, jobs, quarantine and sessions from disk.

        Safe on a fresh directory (restores nothing).  Returns a summary
        of what came back.
        """
        summary = {"logs": 0, "jobs_requeued": 0, "sessions": []}
        if self.manifest_path.exists():
            document = json.loads(self.manifest_path.read_text())
            if document.get("format") != MANIFEST_FORMAT:
                raise ValueError(
                    f"{self.manifest_path} is not a service manifest"
                )
            version = document.get("version")
            if isinstance(version, int) and version > MANIFEST_VERSION:
                raise ValueError(
                    f"manifest version {version} is newer than this build "
                    f"supports ({MANIFEST_VERSION}); upgrade before resuming"
                )
            summary["logs"] = self.registry.restore_payload(
                document.get("registry", {})
            )
            summary["jobs_requeued"] = self.jobs.restore_payload(
                document.get("jobs", {})
            )
            quarantine_payload = document.get("quarantine")
            if quarantine_payload:
                restored = QuarantineStore.from_payload(quarantine_payload)
                restored.spill_path = self.quarantine.spill_path
                self.quarantine = restored
                self.watcher.quarantine = restored
                self.sessions.quarantine = restored
        # Safety net under manifest loss (e.g. SIGKILL before the first
        # periodic save): spool files exist before the manifest mentions
        # them, so anything on disk but not in the manifest re-registers.
        summary["logs"] += self.registry.scan_spool()
        summary["sessions"] = self.sessions.resume()
        return summary

    def shutdown(self) -> None:
        """Save everything and stop the worker pool."""
        self.save_state()
        self.pool.shutdown()

    # ------------------------------------------------------------------
    # Introspection (what /healthz serves)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "ticks": self.ticks,
            "logs": len(self.registry),
            "jobs": len(self.jobs),
            "queue_depth": self.jobs.depth,
            "sessions": len(self.sessions),
            "quarantined": self.quarantine.total_seen,
            "workers": self.pool.processes,
        }
