"""The matching daemon: one object wiring watcher, queue, pool, sessions.

:class:`MatchingService` owns a state directory::

    <state>/
      drop/             watched; operators drop .csv/.xes files here
      drop/quarantine/  unreadable dropped files, moved aside
      spool/            canonical CSVs of every registered log
      sessions/         one versioned checkpoint per online session
      quarantine.jsonl  spill-to-disk dead letters (rows, traces, files)
      manifest.json     registry + job queue + service metadata

and exposes exactly three verbs the rest of the package builds on:

* :meth:`tick` — one scheduling round: poll the drop directory,
  dispatch queued jobs to the worker pool, harvest finished ones.
  Everything the daemon does between HTTP requests is some number of
  ticks; tests and the CI smoke drive ticks directly for determinism.
* :meth:`save_state` — manifest + session checkpoints, atomically.
* :meth:`resume` — rebuild the whole service from a state directory:
  spooled logs re-register, DONE/FAILED jobs return as history, killed
  RUNNING jobs re-queue, sessions restore from their checkpoints.

The kill-and-resume contract: ``save_state`` followed by process death
followed by ``resume`` on a fresh instance reaches the same mappings
and scores as never having died.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.obs.logs import bind, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import ObservabilityProbe, Probe
from repro.obs.profiler import SamplingProfiler
from repro.obs.telemetry import TelemetryHub
from repro.resilience.quarantine import QuarantineRecord, QuarantineStore
from repro.resilience.recovery import RecoveryStats
from repro.resilience.supervise import (
    OUTCOME_CRASH,
    OUTCOME_DEADLINE,
    DegradedStateMachine,
    RetryPolicy,
    reap_orphan_segments,
    reap_stale_files,
)
from repro.service.jobs import JobQueue, MatchJob, QueueFullError
from repro.service.registry import LogRegistry, UnknownLogError
from repro.service.sessions import SessionManager
from repro.service.watcher import DirectoryWatcher
from repro.service.workers import WorkerPool, job_payload

MANIFEST_FORMAT = "repro-service-manifest"
MANIFEST_VERSION = 1

logger = get_logger("service.daemon")


class MatchingService:
    """Matching-as-a-service over one state directory.

    Parameters
    ----------
    state_dir:
        Root of all service state (created if missing).
    processes:
        Worker processes for match jobs; ``0`` executes jobs inline in
        the daemon thread (deterministic, the test/CI mode).
    settle_polls:
        Stability polls the watcher requires before ingesting a dropped
        file (``0`` = ingest on sight).
    checkpoint_every:
        Seconds between periodic :meth:`save_state` calls from
        :meth:`tick`; ``None`` saves only on shutdown/demand.
    probe:
        Pass an existing probe to share a registry; by default the
        service builds its own :class:`ObservabilityProbe` so
        ``/metrics`` always has content.
    max_retries:
        Attempts beyond the first a failing job may consume before it
        is poisoned into quarantine (see :class:`RetryPolicy`).
    job_deadline:
        Default per-job wall-clock budget in seconds, enforced by the
        daemon (``None`` disables); a job may carry its own ``deadline``.
    queue_bound:
        Maximum queued+running jobs before submissions are refused with
        :class:`QueueFullError` (the API's 429); ``None`` = unbounded.
    retry_seed:
        Seed for the backoff jitter RNG — supervised schedules replay
        bit-for-bit like chaos runs.
    telemetry:
        Cross-process trace collection (PR 9): attempts spool spans in
        the workers, the daemon merges them per job and folds worker
        counter deltas into ``/metrics``.  ``False`` restores the
        telemetry-free payload and execution path bit-for-bit.
    profile:
        Attach a sampling profiler to the daemon process *and* ask each
        worker attempt to profile itself (speedscope files land next to
        the spools).  Default off — profiling is a debugging posture.
    log_ring:
        A :class:`~repro.obs.logs.LogRingBuffer` already wired into the
        logging tree (the CLI does this); exposed at ``GET /logs/tail``.
    """

    def __init__(
        self,
        state_dir: str | Path,
        processes: int = 0,
        settle_polls: int = 0,
        checkpoint_every: float | None = 30.0,
        probe: Probe | None = None,
        max_retries: int = 2,
        job_deadline: float | None = None,
        queue_bound: int | None = None,
        retry_seed: int = 0,
        telemetry: bool = True,
        profile: bool = False,
        log_ring=None,
    ):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        if probe is None:
            probe = ObservabilityProbe(metrics=MetricsRegistry())
        self.probe = probe
        self.retry_policy = RetryPolicy(
            max_retries=max_retries, deadline=job_deadline, seed=retry_seed
        )
        self._retry_rng = self.retry_policy.rng()
        self.recovery = RecoveryStats()
        self.readiness = DegradedStateMachine()
        # Crash-safe shm lifecycle: before building anything that could
        # allocate segments, unlink whatever a dead predecessor leaked.
        reaped = reap_orphan_segments()
        if reaped:
            self.recovery.shm_segments_reaped += reaped
            if probe.enabled:
                probe.on_shm_reaped(reaped)
        self.telemetry = TelemetryHub(
            self.state_dir,
            registry=getattr(probe, "metrics", None),
            enabled=telemetry,
            profile_workers=profile,
        )
        self._spools_reaped_once = False
        self.log_ring = log_ring
        self.profiler = SamplingProfiler() if profile else None
        if self.profiler is not None:
            self.profiler.start()
        self.quarantine = QuarantineStore(
            spill_path=self.state_dir / "quarantine.jsonl"
        )
        self.registry = LogRegistry(self.state_dir / "spool")
        self.watcher = DirectoryWatcher(
            self.state_dir / "drop",
            self.registry,
            self.quarantine,
            settle_polls=settle_polls,
            probe=probe,
        )
        self.jobs = JobQueue(probe=probe, bound=queue_bound)
        self.pool = WorkerPool(processes=processes, probe=probe)
        self._respawns_seen = self.pool.respawns
        self._respawned_this_round = False
        self.sessions = SessionManager(
            self.registry,
            self.state_dir / "sessions",
            quarantine=self.quarantine,
            probe=probe,
        )
        self.checkpoint_every = checkpoint_every
        self._last_save = time.monotonic()
        self._manifest_lock = threading.Lock()
        self.started_at = time.time()
        self.ticks = 0

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    def tick(self) -> dict:
        """One scheduling round; returns what it did (for tests/logs)."""
        self.ticks += 1
        if not self._spools_reaped_once:
            # Deferred past construction so a resume() can claim its
            # jobs' spools first; anything left belongs to no job this
            # daemon will ever harvest.
            self._spools_reaped_once = True
            reaped = self.telemetry.reap(
                known_job_ids=[job.job_id for job in self.jobs.jobs()],
                reaper=reap_stale_files,
            )
            if reaped:
                logger.info(
                    "reaped orphaned telemetry spools", extra={"count": reaped}
                )
        registered = self.watcher.poll()
        dispatched = self._dispatch()
        finished = self._harvest()
        self._update_readiness()
        if (
            self.checkpoint_every is not None
            and time.monotonic() - self._last_save >= self.checkpoint_every
        ):
            self.save_state()
        return {
            "registered": registered,
            "dispatched": dispatched,
            "finished": finished,
        }

    def run_until_idle(self, max_ticks: int = 10_000) -> int:
        """Tick until no queued/running jobs remain; returns tick count.

        A tick that makes no progress (waiting on worker futures, or on
        a retry's backoff stamp to pass) sleeps briefly instead of
        spinning — in either pool mode, since backoff-pending jobs make
        even inline ticks momentarily idle.
        """
        spent = 0
        while self.jobs.depth > 0 or self.pool.active > 0:
            spent += 1
            if spent > max_ticks:
                raise RuntimeError(
                    f"service did not go idle within {max_ticks} ticks"
                )
            outcome = self.tick()
            if not (outcome["dispatched"] or outcome["finished"]):
                time.sleep(0.02 if self.pool.processes else 0.005)
        return spent

    def _dispatch(self) -> list[str]:
        dispatched = []
        while True:
            job = self.jobs.claim_next()
            if job is None:
                break
            try:
                payload = job_payload(
                    job,
                    self.registry.path(job.log_1),
                    self.registry.path(job.log_2),
                    deadline=self.retry_policy.deadline_for(job.deadline),
                    telemetry=self.telemetry.attempt_payload(job),
                )
            except UnknownLogError as error:
                self.jobs.fail(job.job_id, f"UnknownLogError: {error}")
                continue
            self.telemetry.attempt_started(job)
            with bind(trace_id=job.trace_id, job_id=job.job_id):
                logger.info(
                    "dispatching job attempt",
                    extra={"attempt": job.attempts, "method": job.method},
                )
            self.pool.submit(job.job_id, payload)
            dispatched.append(job.job_id)
        return dispatched

    def _harvest(self) -> list[str]:
        """Apply the retry policy to every harvested attempt.

        ``ok`` finishes the job; any failure consults
        :meth:`RetryPolicy.verdict` — ``retry`` re-queues the same pure
        recipe behind a jittered backoff stamp, ``poison`` fails it and
        routes a dead-letter record into quarantine (kind ``"job"``).
        Executor rebuilds performed by the pool are mirrored into
        :class:`RecoveryStats` here.
        """
        finished = []
        for outcome in self.pool.completed():
            job_id = outcome.job_id
            job = self.jobs.get(job_id)
            self.telemetry.attempt_finished(
                job_id, job.attempts, outcome.kind, outcome.error
            )
            if outcome.ok:
                # Fold the attempt's counter snapshot into /metrics
                # (exactly once — one JobOutcome per attempt is the
                # pool's harvest guarantee), then slim the bulky counter
                # rows out of the result document the API serves.
                telemetry = (outcome.result or {}).get("telemetry")
                if telemetry is not None:
                    self.telemetry.fold_outcome(telemetry)
                    outcome.result["telemetry"] = {
                        k: v for k, v in telemetry.items() if k != "counters"
                    }
                self.jobs.finish(job_id, outcome.result, outcome.elapsed_seconds)
                self.telemetry.merge_job(job_id, job.trace_id)
                with bind(trace_id=job.trace_id, job_id=job_id):
                    logger.info(
                        "job finished",
                        extra={
                            "attempt": job.attempts,
                            "elapsed_seconds": round(outcome.elapsed_seconds, 3),
                        },
                    )
                finished.append(job_id)
                continue
            worker_died = outcome.kind in (OUTCOME_CRASH, OUTCOME_DEADLINE)
            if outcome.kind == OUTCOME_DEADLINE:
                self.recovery.jobs_deadline_exceeded += 1
            verdict = self.retry_policy.verdict(
                attempts=job.attempts,
                worker_deaths=job.worker_deaths + (1 if worker_died else 0),
            )
            if verdict == "retry":
                delay = self.retry_policy.backoff(job.attempts, self._retry_rng)
                self.jobs.retry(
                    job_id,
                    outcome.error or outcome.kind,
                    not_before=time.monotonic() + delay,
                    worker_died=worker_died,
                )
                self.recovery.jobs_retried += 1
                with bind(trace_id=job.trace_id, job_id=job_id):
                    logger.warning(
                        "job attempt failed; retrying",
                        extra={
                            "kind": outcome.kind,
                            "attempt": job.attempts,
                            "backoff_seconds": round(delay, 3),
                            "error": (outcome.error or "")[:300],
                        },
                    )
                if self.probe.enabled:
                    self.probe.on_job_retry(outcome.kind)
            else:
                self._poison(job, outcome)
                finished.append(job_id)
        respawns = self.pool.respawns
        self._respawned_this_round = respawns > self._respawns_seen
        if self._respawned_this_round:
            self.recovery.workers_respawned += respawns - self._respawns_seen
            self._respawns_seen = respawns
        return finished

    def _poison(self, job: MatchJob, outcome) -> None:
        """Dead-letter a job the policy refuses to retry again."""
        error = (
            f"poisoned after {job.attempts} attempt(s) "
            f"(last failure: {outcome.error or outcome.kind})"
        )
        self.jobs.fail(job.job_id, error, outcome.elapsed_seconds)
        self.quarantine.add(
            QuarantineRecord(
                kind="job",
                reason=error,
                case_id=job.job_id,
                events=(
                    f"log_1={job.log_1}",
                    f"log_2={job.log_2}",
                    f"method={job.method}",
                    f"worker_deaths={job.worker_deaths}",
                ),
                source="service",
            )
        )
        self.recovery.jobs_poisoned += 1
        self.telemetry.merge_job(job.job_id, job.trace_id)
        with bind(trace_id=job.trace_id, job_id=job.job_id):
            logger.error(
                "job poisoned into quarantine",
                extra={"kind": outcome.kind, "attempts": job.attempts},
            )
        if self.probe.enabled:
            self.probe.on_job_poisoned(outcome.kind)

    def _update_readiness(self) -> None:
        """Recompute the /readyz verdict from queue and pool state."""
        bound = self.jobs.bound
        if bound is not None and self.jobs.depth >= bound:
            self.readiness.mark("queue-saturated")
        else:
            self.readiness.clear("queue-saturated")
        # A pool that had to rebuild is suspect until it completes a
        # scheduling round without another rebuild.
        if self._respawned_this_round:
            self.readiness.mark("worker-pool-rebuilding")
        else:
            self.readiness.clear("worker-pool-rebuilding")

    # ------------------------------------------------------------------
    # Submission facade (used by the API layer and tests)
    # ------------------------------------------------------------------
    def submit_job(self, log_1: str, log_2: str, **options) -> MatchJob:
        """Validate log names exist now, then queue the job.

        Raises :class:`QueueFullError` (counted as backpressure) when
        the queue is at its bound — callers map it to HTTP 429.
        """
        for name in (log_1, log_2):
            self.registry.info(name)  # raises UnknownLogError
        try:
            return self.jobs.submit(log_1, log_2, **options)
        except QueueFullError:
            self.recovery.backpressure_rejections += 1
            self.readiness.mark("queue-saturated")
            if self.probe.enabled:
                self.probe.on_backpressure()
            raise

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.state_dir / "manifest.json"

    def save_state(self) -> Path:
        """Write the manifest and checkpoint every session, atomically."""
        with self._manifest_lock:
            self.sessions.checkpoint_all()
            document = {
                "format": MANIFEST_FORMAT,
                "version": MANIFEST_VERSION,
                "registry": self.registry.to_payload(),
                "jobs": self.jobs.to_payload(),
                "quarantine": self.quarantine.to_payload(),
            }
            temp = self.manifest_path.with_suffix(".json.tmp")
            temp.write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
            os.replace(temp, self.manifest_path)
        self._last_save = time.monotonic()
        return self.manifest_path

    def resume(self) -> dict:
        """Restore registry, jobs, quarantine and sessions from disk.

        Safe on a fresh directory (restores nothing).  Returns a summary
        of what came back.
        """
        summary = {"logs": 0, "jobs_requeued": 0, "sessions": []}
        if self.manifest_path.exists():
            document = json.loads(self.manifest_path.read_text())
            if document.get("format") != MANIFEST_FORMAT:
                raise ValueError(
                    f"{self.manifest_path} is not a service manifest"
                )
            version = document.get("version")
            if isinstance(version, int) and version > MANIFEST_VERSION:
                raise ValueError(
                    f"manifest version {version} is newer than this build "
                    f"supports ({MANIFEST_VERSION}); upgrade before resuming"
                )
            summary["logs"] = self.registry.restore_payload(
                document.get("registry", {})
            )
            summary["jobs_requeued"] = self.jobs.restore_payload(
                document.get("jobs", {})
            )
            quarantine_payload = document.get("quarantine")
            if quarantine_payload:
                restored = QuarantineStore.from_payload(quarantine_payload)
                restored.spill_path = self.quarantine.spill_path
                self.quarantine = restored
                self.watcher.quarantine = restored
                self.sessions.quarantine = restored
        # Safety net under manifest loss (e.g. SIGKILL before the first
        # periodic save): spool files exist before the manifest mentions
        # them, so anything on disk but not in the manifest re-registers.
        summary["logs"] += self.registry.scan_spool()
        summary["sessions"] = self.sessions.resume()
        # Restored jobs keep their spools (their attempts merge when the
        # job reaches a terminal state under this daemon); everything
        # else in the spool directory is a dead generation's leftovers.
        self._spools_reaped_once = True
        self.telemetry.reap(
            known_job_ids=[job.job_id for job in self.jobs.jobs()],
            reaper=reap_stale_files,
        )
        logger.info(
            "service resumed",
            extra={
                "logs": summary["logs"],
                "jobs_requeued": summary["jobs_requeued"],
                "sessions": len(summary["sessions"]),
            },
        )
        return summary

    def shutdown(self) -> list[str]:
        """Save everything and drain the pool boundedly.

        Jobs still in flight after the drain timeout are abandoned (the
        manifest saved above holds them as RUNNING, so a later
        ``resume`` re-queues them) and their ids returned.
        """
        self.save_state()
        if self.profiler is not None and self.profiler.running:
            self.profiler.stop()
            try:
                profile_path = (
                    self.state_dir / "telemetry" / "daemon.speedscope.json"
                )
                profile_path.parent.mkdir(parents=True, exist_ok=True)
                profile_path.write_text(
                    json.dumps(self.profiler.speedscope(name="repro-daemon"))
                )
                logger.info(
                    "wrote daemon profile", extra={"path": str(profile_path)}
                )
            except OSError:
                pass
        return self.pool.shutdown()

    # ------------------------------------------------------------------
    # Introspection (what /healthz and /readyz serve)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "ticks": self.ticks,
            "logs": len(self.registry),
            "jobs": len(self.jobs),
            "queue_depth": self.jobs.depth,
            "sessions": len(self.sessions),
            "quarantined": self.quarantine.total_seen,
            "workers": self.pool.processes,
            "readiness": self.readiness.state,
            "telemetry": {
                **self.telemetry.state(),
                "profiler": (
                    self.profiler.state()
                    if self.profiler is not None
                    else {"running": False, "samples": 0}
                ),
            },
            "supervision": {
                "jobs_retried": self.recovery.jobs_retried,
                "workers_respawned": self.recovery.workers_respawned,
                "jobs_poisoned": self.recovery.jobs_poisoned,
                "jobs_deadline_exceeded": self.recovery.jobs_deadline_exceeded,
                "backpressure_rejections": (
                    self.recovery.backpressure_rejections
                ),
                "shm_segments_reaped": self.recovery.shm_segments_reaped,
            },
        }

    def readyz(self) -> dict:
        """The ``/readyz`` document (status + active degraded reasons)."""
        return self.readiness.snapshot()
