"""Command-line interface.

Five subcommands cover the library's workflow on files (CSV or XES logs,
detected by extension):

* ``repro characterize LOG ...`` — Table-3-style statistics of logs;
* ``repro match LOG1 LOG2`` — match two logs, print the mapping (and
  optionally save it as JSON / explain it pattern by pattern);
* ``repro stream LOG1 FEED`` — replay ``FEED`` as a live stream against
  the frozen reference ``LOG1``: traces are ingested case by case, state
  is maintained incrementally, and re-matching only fires on drift;
* ``repro discover LOG`` — mine discriminative SEQ/AND patterns;
* ``repro graph LOG`` — export a log's dependency graph as DOT;
* ``repro serve STATE_DIR`` — run the matching daemon: watched drop
  directory, job queue over worker processes, HTTP API (see
  :mod:`repro.service`);
* ``repro info`` — version, kernel availability, probe hook points.

``match`` and ``stream`` take observability flags: ``--trace FILE``
(span trace; ``.jsonl`` or Perfetto-loadable Chrome JSON), ``--metrics
FILE`` (``.json`` snapshot or Prometheus text) and ``--heartbeat S``
(progress lines on stderr).

Examples::

    python -m repro.cli match dept1.xes dept2.csv \\
        --pattern "SEQ(Receive_Order, AND(Payment, Check_Inventory))" \\
        --method heuristic-advanced --explain
    python -m repro.cli stream dept1.xes live_feed.csv \\
        --batch-size 100 --drift-threshold 0.05
    python -m repro.cli discover dept1.xes --min-support 0.3
"""

from __future__ import annotations

import argparse
import platform
import sys
from pathlib import Path

from repro import __version__
from repro.core.matcher import METHODS, EventMatcher
from repro.evaluation.explain import explain_mapping, format_explanation
from repro.evaluation.reporting import (
    format_observability_report,
    format_stream_report,
)
from repro.obs import (
    NULL_PROBE,
    MetricsRegistry,
    ObservabilityProbe,
    Probe,
    ProgressReporter,
    Tracer,
)
from repro.graph.dependency import dependency_graph
from repro.graph.dot import to_dot
from repro.log.csvio import read_csv
from repro.log.eventlog import EventLog
from repro.log.statistics import characterize
from repro.log.xes import read_xes
from repro.patterns.discovery import discover_patterns
from repro.patterns.matching import pattern_frequency
from repro.patterns.parser import parse_pattern
from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from repro.resilience.quarantine import QuarantineStore
from repro.resilience.validation import TraceValidator
from repro.stream.engine import OnlineMatcher
from repro.stream.ingest import StreamingLog


def load_log(path: str) -> EventLog:
    """Read a log file; the format follows the extension (.xes / .csv)."""
    file_path = Path(path)
    if not file_path.exists():
        raise SystemExit(f"error: no such file: {path}")
    if file_path.suffix.lower() == ".xes":
        return read_xes(file_path, name=file_path.stem)
    if file_path.suffix.lower() == ".csv":
        return read_csv(file_path, name=file_path.stem)
    raise SystemExit(
        f"error: unsupported log format {file_path.suffix!r} "
        "(expected .xes or .csv)"
    )


def _add_observability_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", metavar="FILE",
        help="write the span trace to FILE: .jsonl gets JSON Lines, any "
        "other extension Chrome trace_event JSON (open in Perfetto / "
        "chrome://tracing)",
    )
    group.add_argument(
        "--metrics", metavar="FILE",
        help="write run metrics to FILE: .json gets a JSON snapshot, any "
        "other extension Prometheus text exposition",
    )
    group.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="print a progress line (expansions/sec, incumbent, gap) to "
        "stderr every SECONDS during long searches",
    )


def _build_probe(args: argparse.Namespace):
    """``(probe, finalize)`` from the observability flags.

    Returns the shared null probe (and a no-op finalizer) when no flag
    was given, so unobserved runs stay on the free path.  ``finalize``
    writes the requested files, choosing the format by extension.
    """
    if not (args.trace or args.metrics or args.heartbeat):
        return NULL_PROBE, lambda: None
    tracer = Tracer() if args.trace else None
    reporter = (
        ProgressReporter(interval=args.heartbeat) if args.heartbeat else None
    )
    probe = ObservabilityProbe(
        tracer=tracer, metrics=MetricsRegistry(), reporter=reporter
    )

    def finalize() -> None:
        if args.trace:
            path = Path(args.trace)
            if path.suffix == ".jsonl":
                tracer.write_jsonl(path)
            else:
                tracer.write_chrome(path)
            print(f"# trace written to {path}", file=sys.stderr)
        if args.metrics:
            path = Path(args.metrics)
            if path.suffix == ".json":
                probe.metrics.write_json(path)
            else:
                probe.metrics.write_prometheus(path)
            print(f"# metrics written to {path}", file=sys.stderr)

    return probe, finalize


def _cmd_characterize(args: argparse.Namespace) -> int:
    header = (
        f"{'log':<24} {'# traces':>9} {'# events':>9} {'# edges':>8}"
    )
    print(header)
    print("-" * len(header))
    for path in args.logs:
        log = load_log(path)
        row = characterize(log)
        print(
            f"{row.name:<24} {row.num_traces:>9} {row.num_events:>9} "
            f"{row.num_edges:>8}"
        )
    return 0


def _blocking_from_args(args: argparse.Namespace) -> dict | None:
    """The ``blocking`` option assembled from the CLI knobs (or ``None``)."""
    if not args.blocking:
        return None
    return {
        "frequency_gap": args.blocking_gap,
        "signal_bands": args.blocking_bands,
        "exact_cutoff": args.blocking_exact_cutoff,
        "auto_accept": not args.no_blocking_auto_accept,
    }


def _cmd_match(args: argparse.Namespace) -> int:
    log_1 = load_log(args.log1)
    log_2 = load_log(args.log2)
    patterns = [parse_pattern(text) for text in args.pattern]
    probe, finalize_obs = _build_probe(args)
    matcher = EventMatcher(log_1, log_2, patterns=patterns)
    result = matcher.run(
        args.method,
        node_budget=args.node_budget,
        time_budget=args.time_budget,
        strict=args.strict,
        degraded_fallback=args.degraded_fallback,
        probe=probe,
        workers=args.workers,
        transport=args.transport,
        chunk_size=args.chunk_size,
        blocking=_blocking_from_args(args),
    )
    degraded_text = (
        f" DEGRADED gap<={result.gap:.4f}" if result.degraded else ""
    )
    print(
        f"# method={result.method} score={result.score:.4f} "
        f"time={result.elapsed_seconds:.2f}s "
        f"processed={result.stats.processed_mappings}{degraded_text}"
    )
    for source, target in sorted(result.mapping.as_dict().items()):
        print(f"{source}\t{target}")
    if args.output:
        Path(args.output).write_text(result.mapping.to_json() + "\n")
        print(f"# mapping saved to {args.output}", file=sys.stderr)
    if args.explain:
        explanation = explain_mapping(
            log_1, log_2, result.mapping, patterns=patterns
        )
        print()
        print(format_explanation(explanation, limit=args.explain_limit))
    if probe.enabled:
        print(
            format_observability_report(
                stats=result.stats,
                registry=probe.metrics,
                label=f"match {result.method}",
            ),
            file=sys.stderr,
        )
    finalize_obs()
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    if args.batch_size < 1:
        raise SystemExit("error: --batch-size must be at least 1")
    feed = load_log(args.feed)
    patterns = [parse_pattern(text) for text in args.pattern]
    probe, finalize_obs = _build_probe(args)

    if args.resume:
        # Everything but the feed comes out of the checkpoint: reference
        # log, patterns, engine configuration, committed backlog, open
        # cases, quarantine and mapping.
        engine = load_checkpoint(args.resume)
        stream = engine.stream
        if probe.enabled:
            # Probes are runtime state, not checkpoint state.
            engine.attach_probe(probe)
        print(
            f"# resumed from {args.resume}: {len(stream)} traces committed, "
            f"{len(stream.open_cases())} cases open",
            file=sys.stderr,
        )
    else:
        reference = load_log(args.log1)
        validator = TraceValidator() if args.validate else None
        quarantine = (
            QuarantineStore(capacity=args.quarantine_capacity)
            if args.validate
            else None
        )
        stream = StreamingLog(
            name=Path(args.feed).stem,
            validator=validator,
            quarantine=quarantine,
        )
        engine = OnlineMatcher(
            reference,
            stream,
            patterns=patterns,
            drift_threshold=args.drift_threshold,
            exact_cutoff=args.exact_cutoff,
            node_budget=args.node_budget,
            time_budget=args.time_budget,
            min_traces=args.min_traces,
            check_every=args.check_every,
            probe=probe,
            blocking=args.blocking or None,
        )

    # Replay the feed as live traffic: every event goes through the
    # per-case open/append/close lifecycle, and the engine re-evaluates
    # drift after each committed batch.
    pending = 0
    for trace in feed:
        case_id = trace.case_id if trace.case_id is not None else f"case-{pending}"
        for event in trace:
            stream.append_event(case_id, event)
        stream.close_trace(case_id)
        pending += 1
        if pending % args.batch_size == 0:
            engine.update()
    if pending % args.batch_size != 0 or not engine.history:
        engine.update()
    if args.checkpoint:
        save_checkpoint(engine, args.checkpoint)
        print(f"# checkpoint saved to {args.checkpoint}", file=sys.stderr)

    print(format_stream_report(engine.history))
    recovery = stream.recovery.merged_with(engine.deltas.recovery)
    if recovery.total() or stream.quarantine or probe.enabled:
        print()
        print(
            format_observability_report(
                recovery=recovery,
                quarantine=stream.quarantine,
                registry=probe.metrics if probe.enabled else None,
            )
        )
    rematches = sum(1 for update in engine.history if update.rematched)
    print(
        f"\n# {len(stream)} traces ingested, {len(engine.history)} updates, "
        f"{rematches} re-matches, final score={engine.current_score():.4f}"
    )
    mapping = engine.mapping
    if mapping is None:
        print("# no mapping (feed shorter than --min-traces?)", file=sys.stderr)
        finalize_obs()
        return 1
    for source, target in sorted(mapping.as_dict().items()):
        print(f"{source}\t{target}")
    if args.output:
        Path(args.output).write_text(mapping.to_json() + "\n")
        print(f"# mapping saved to {args.output}", file=sys.stderr)
    finalize_obs()
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    log = load_log(args.log)
    patterns = discover_patterns(
        log,
        min_support=args.min_support,
        max_length=args.max_length,
        max_patterns=args.max_patterns,
    )
    if not patterns:
        print("no complex patterns found; lower --min-support?", file=sys.stderr)
        return 1
    for pattern in patterns:
        frequency = pattern_frequency(log, pattern)
        print(f"{pattern!r}\t{frequency:.3f}")
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    log = load_log(args.log)
    graph = dependency_graph(log)
    print(to_dot(graph, name=log.name or "log", min_edge_weight=args.min_edge))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.obs.logs import LogRingBuffer, configure_logging, get_logger
    from repro.service.api import ServiceAPI
    from repro.service.daemon import MatchingService

    ring = LogRingBuffer(1024)
    configure_logging(
        json_path=args.log_json,
        ring=ring,
        level=getattr(logging, args.log_level.upper(), logging.INFO),
    )
    logger = get_logger("cli.serve")

    service = MatchingService(
        args.state_dir,
        processes=args.workers,
        settle_polls=args.settle_polls,
        checkpoint_every=args.checkpoint_every,
        max_retries=args.max_retries,
        job_deadline=args.job_deadline,
        queue_bound=args.queue_bound,
        telemetry=args.telemetry,
        profile=args.profile,
        log_ring=ring,
    )
    if args.resume:
        summary = service.resume()
        sessions = ", ".join(summary["sessions"]) or "none"
        logger.info(
            "resumed service state",
            extra={
                "logs": summary["logs"],
                "jobs_requeued": summary["jobs_requeued"],
                "sessions": sessions,
            },
        )
    api = ServiceAPI(service, host=args.host, port=args.port).start()
    # The address line stays on raw stderr: scripts (and the CI smoke
    # job) scrape it to learn the ephemeral port.
    print(
        f"# serving on {api.address} (state: {service.state_dir}, "
        f"workers: {args.workers or 'inline'})",
        file=sys.stderr,
    )
    logger.info(
        "service started",
        extra={
            "address": api.address,
            "workers": args.workers,
            "telemetry": args.telemetry,
            "profile": args.profile,
        },
    )
    try:
        while not api.stopping.is_set():
            service.tick()
            api.stopping.wait(args.poll_interval)
    except KeyboardInterrupt:
        logger.info("interrupted; saving state")
    finally:
        api.stop()
        abandoned = service.shutdown()
        if abandoned:
            logger.warning(
                "abandoned in-flight jobs after drain timeout "
                "(they re-queue on --resume)",
                extra={"jobs": ", ".join(abandoned)},
            )
        logger.info(
            "state saved", extra={"manifest": str(service.manifest_path)}
        )
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.obs.benchtrend import run_report

    return run_report(
        root=args.root,
        gate=args.gate,
        threshold_pct=args.threshold,
        window=args.window,
        verbose=args.verbose,
    )


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__}")
    print(f"python {platform.python_version()} ({platform.platform()})")
    try:
        from repro.kernel.automaton import OrderAutomaton  # noqa: F401
        from repro.kernel.frequency import FrequencyKernel  # noqa: F401

        kernel = (
            "available (interned ids, bitset postings, bigram tier, "
            "multi-order Aho-Corasick automata)"
        )
    except Exception as error:  # pragma: no cover - import breakage only
        kernel = f"unavailable ({error})"
    print(f"frequency kernel: {kernel}")
    print(f"methods: {', '.join(METHODS)}")
    hooks = sorted(
        name
        for name in vars(Probe)
        if name.startswith("on_") or name.startswith("record_")
    )
    print(f"probe hooks: {', '.join(hooks)}")
    print(
        "observability: --trace/--metrics/--heartbeat on `match` and "
        "`stream` (disabled by default; NULL probe on the hot paths)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Matching heterogeneous events with patterns "
        "(ICDE 2014 / TKDE 2017 reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    characterize_parser = commands.add_parser(
        "characterize", help="print Table-3-style statistics of logs"
    )
    characterize_parser.add_argument("logs", nargs="+", metavar="LOG")
    characterize_parser.set_defaults(handler=_cmd_characterize)

    match_parser = commands.add_parser(
        "match", help="match the event vocabularies of two logs"
    )
    match_parser.add_argument("log1", metavar="LOG1")
    match_parser.add_argument("log2", metavar="LOG2")
    match_parser.add_argument(
        "--pattern", action="append", default=[], metavar="EXPR",
        help='complex pattern, e.g. "SEQ(A, AND(B, C), D)" (repeatable)',
    )
    match_parser.add_argument(
        "--method", choices=METHODS, default="pattern-tight"
    )
    match_parser.add_argument("--node-budget", type=int, default=None)
    match_parser.add_argument("--time-budget", type=float, default=None)
    match_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="root-split the exact pattern-* search over N worker "
        "processes (1 = serial; budgets apply per chunk)",
    )
    match_parser.add_argument(
        "--transport", choices=("auto", "shm", "pickle"), default="auto",
        help="how logs reach parallel workers: shared memory, pickling, "
        "or auto (shm with pickle fallback); ignored when --workers 1",
    )
    match_parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="K",
        help="root targets per work-stealing chunk (default: split into "
        "4 chunks per worker); ignored when --workers 1",
    )
    match_parser.add_argument(
        "--blocking", action="store_true",
        help="run the multi-signal blocking tier ahead of the exact "
        "pattern-* search: auto-accept unambiguous 1:1 blocks, search "
        "only inside ambiguous ones",
    )
    match_parser.add_argument(
        "--blocking-gap", type=float, default=0.05, metavar="G",
        help="frequency-gap clustering threshold of the blocking plan "
        "(larger = coarser blocks, safer under heterogeneity)",
    )
    match_parser.add_argument(
        "--blocking-bands", type=int, default=8, metavar="B",
        help="quantization bands of the secondary blocking signals",
    )
    match_parser.add_argument(
        "--blocking-exact-cutoff", type=int, default=None, metavar="K",
        help="escalated blocks with more than K sources run the advanced "
        "heuristic instead of exact A* (default: always exact)",
    )
    match_parser.add_argument(
        "--no-blocking-auto-accept", action="store_true",
        help="search 1:1 blocks too instead of accepting them outright",
    )
    match_parser.add_argument(
        "--strict", action="store_true",
        help="fail on budget exhaustion instead of returning the "
        "degraded anytime incumbent",
    )
    match_parser.add_argument(
        "--degraded-fallback", type=float, default=None, metavar="GAP",
        help="re-run the warm-started advanced heuristic when a degraded "
        "exact result's optimality gap exceeds GAP",
    )
    match_parser.add_argument(
        "--output", metavar="FILE", help="save the mapping as JSON"
    )
    match_parser.add_argument(
        "--explain", action="store_true",
        help="print the per-pattern contribution breakdown",
    )
    match_parser.add_argument("--explain-limit", type=int, default=None)
    _add_observability_options(match_parser)
    match_parser.set_defaults(handler=_cmd_match)

    stream_parser = commands.add_parser(
        "stream",
        help="replay FEED as a live stream against the reference LOG1, "
        "re-matching only on drift",
    )
    stream_parser.add_argument("log1", metavar="LOG1")
    stream_parser.add_argument("feed", metavar="FEED")
    stream_parser.add_argument(
        "--pattern", action="append", default=[], metavar="EXPR",
        help='complex pattern over LOG1, e.g. "SEQ(A, AND(B, C))" (repeatable)',
    )
    stream_parser.add_argument(
        "--batch-size", type=int, default=100,
        help="traces committed between drift evaluations",
    )
    stream_parser.add_argument(
        "--drift-threshold", type=float, default=0.05,
        help="relative score drift that triggers a re-match",
    )
    stream_parser.add_argument(
        "--exact-cutoff", type=int, default=6,
        help="use exact A* when both vocabularies are at most this large",
    )
    stream_parser.add_argument(
        "--min-traces", type=int, default=1,
        help="hold until this many traces are committed",
    )
    stream_parser.add_argument("--node-budget", type=int, default=200_000)
    stream_parser.add_argument("--time-budget", type=float, default=None)
    stream_parser.add_argument(
        "--blocking", action="store_true",
        help="run the multi-signal blocking tier ahead of exact "
        "re-matches (default knobs; ignored by heuristic re-matches)",
    )
    stream_parser.add_argument(
        "--validate", action="store_true",
        help="validate every trace before commit; rejects go to a "
        "bounded quarantine store instead of raising",
    )
    stream_parser.add_argument(
        "--quarantine-capacity", type=int, default=1024,
        help="quarantined payloads kept in memory (counting continues "
        "past the bound)",
    )
    stream_parser.add_argument(
        "--check-every", type=int, default=None, metavar="N",
        help="run cheap self-healing invariant checks on the delta "
        "state every N commits",
    )
    stream_parser.add_argument(
        "--checkpoint", metavar="FILE",
        help="save the engine state to FILE after the feed is replayed",
    )
    stream_parser.add_argument(
        "--resume", metavar="FILE",
        help="restore the engine from a checkpoint and replay FEED on "
        "top of it (LOG1 and --pattern/--drift options are taken from "
        "the checkpoint)",
    )
    stream_parser.add_argument(
        "--output", metavar="FILE", help="save the final mapping as JSON"
    )
    _add_observability_options(stream_parser)
    stream_parser.set_defaults(handler=_cmd_stream)

    discover_parser = commands.add_parser(
        "discover", help="mine discriminative SEQ/AND patterns from a log"
    )
    discover_parser.add_argument("log", metavar="LOG")
    discover_parser.add_argument("--min-support", type=float, default=0.3)
    discover_parser.add_argument("--max-length", type=int, default=5)
    discover_parser.add_argument("--max-patterns", type=int, default=10)
    discover_parser.set_defaults(handler=_cmd_discover)

    graph_parser = commands.add_parser(
        "graph", help="export a log's dependency graph as Graphviz DOT"
    )
    graph_parser.add_argument("log", metavar="LOG")
    graph_parser.add_argument(
        "--min-edge", type=float, default=0.0,
        help="hide edges below this frequency",
    )
    graph_parser.set_defaults(handler=_cmd_graph)

    serve_parser = commands.add_parser(
        "serve",
        help="run the matching daemon: watched drop directory, job "
        "queue, stdlib HTTP API",
    )
    serve_parser.add_argument(
        "state_dir", metavar="STATE_DIR",
        help="service state root (drop/, spool/, sessions/, manifest)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8181,
        help="HTTP port (0 binds an ephemeral port and prints it)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes for match jobs (0 runs jobs inline in "
        "the daemon loop)",
    )
    serve_parser.add_argument(
        "--settle-polls", type=int, default=1, metavar="N",
        help="polls a dropped file's size+mtime must hold still before "
        "it is ingested (0 ingests on first sight)",
    )
    serve_parser.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="seconds between daemon scheduling ticks",
    )
    serve_parser.add_argument(
        "--checkpoint-every", type=float, default=30.0, metavar="SECONDS",
        help="seconds between periodic manifest + session checkpoints",
    )
    serve_parser.add_argument(
        "--resume", action="store_true",
        help="restore registry, jobs and sessions from STATE_DIR before "
        "serving (interrupted jobs re-queue)",
    )
    serve_parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="failed-attempt retries a job gets before it is poisoned "
        "into quarantine (0 fails jobs on first error)",
    )
    serve_parser.add_argument(
        "--job-deadline", type=float, default=None, metavar="SECONDS",
        help="default wall-clock budget per job attempt, enforced by "
        "the daemon (over-deadline workers are reclaimed; unset = none)",
    )
    serve_parser.add_argument(
        "--queue-bound", type=int, default=None, metavar="N",
        help="maximum queued+running jobs before POST /jobs returns "
        "429 with Retry-After (unset = unbounded)",
    )
    serve_parser.add_argument(
        "--trace", dest="telemetry", action=argparse.BooleanOptionalAction,
        default=True,
        help="cross-process telemetry: per-job span spools merged into "
        "Chrome traces at GET /jobs/ID/trace (--no-trace disables)",
    )
    serve_parser.add_argument(
        "--profile", action="store_true",
        help="sampling profiler: daemon-wide plus per-job-attempt "
        "speedscope profiles under STATE_DIR/telemetry/",
    )
    serve_parser.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="append structured JSON log lines to PATH (stderr keeps "
        "the human-readable form either way)",
    )
    serve_parser.add_argument(
        "--log-level", default="info", metavar="LEVEL",
        help="log level for stderr/JSON/ring sinks (default: info)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    bench_parser = commands.add_parser(
        "bench", help="benchmark trajectory tooling"
    )
    bench_commands = bench_parser.add_subparsers(
        dest="bench_command", required=True
    )
    report_parser = bench_commands.add_parser(
        "report",
        help="trend table over BENCH_*.json (latest vs trailing median)",
    )
    report_parser.add_argument(
        "--root", default=".", help="directory holding BENCH_*.json files"
    )
    report_parser.add_argument(
        "--gate", action="store_true",
        help="exit non-zero when a metric regresses past the threshold",
    )
    report_parser.add_argument(
        "--threshold", type=float, default=15.0, metavar="PCT",
        help="regression threshold in percent (default: 15)",
    )
    report_parser.add_argument(
        "--window", type=int, default=10, metavar="N",
        help="trailing same-params records used for the baseline median",
    )
    report_parser.add_argument(
        "--verbose", action="store_true",
        help="also show metrics with unknown better-direction",
    )
    report_parser.set_defaults(handler=_cmd_bench_report)

    info_parser = commands.add_parser(
        "info",
        help="print version, kernel availability and probe hook points",
    )
    info_parser.set_defaults(handler=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
