"""Graph substrate: labeled directed graphs and dependency graphs.

Built from scratch (no networkx): the matching algorithms need only a small
directed-graph core — frequency-labeled vertices and edges (Definition 1),
adjacency queries, induced subgraphs — plus the injective subgraph check
behind the Proposition 3 pruning rule.
"""

from repro.graph.digraph import DiGraph
from repro.graph.dependency import dependency_graph, dependency_graph_from_counts
from repro.graph.dot import matching_to_dot, to_dot
from repro.graph.isomorphism import (
    find_subgraph_embedding,
    is_subgraph,
    subgraph_embeddings,
)

__all__ = [
    "DiGraph",
    "dependency_graph",
    "dependency_graph_from_counts",
    "find_subgraph_embedding",
    "is_subgraph",
    "matching_to_dot",
    "subgraph_embeddings",
    "to_dot",
]
