"""Event dependency graphs (Definition 1).

Each event of a log becomes a vertex weighted with its normalized frequency
(fraction of traces containing it); each consecutive event pair with
non-zero frequency becomes an edge weighted with the fraction of traces in
which the pair occurs consecutively at least once.  Edges with frequency 0
are omitted, exactly as in the paper.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.graph.digraph import DiGraph
from repro.log.events import Event
from repro.log.eventlog import EventLog


def dependency_graph(log: EventLog) -> DiGraph:
    """Build the event dependency graph of ``log``."""
    graph = DiGraph()
    for event in sorted(log.alphabet()):
        graph.add_vertex(event, log.vertex_frequency(event))
    for source, target in log.edges():
        graph.add_edge(source, target, log.edge_frequency(source, target))
    return graph


def dependency_graph_from_counts(
    vertex_counts: Mapping[Event, int],
    edge_counts: Mapping[tuple[Event, Event], int],
    num_traces: int,
) -> DiGraph:
    """Build a dependency graph directly from trace counts.

    The streaming subsystem maintains raw per-event / per-pair trace
    counts under append (they are monotone); normalizing them by the
    current trace total yields exactly the Definition 1 graph without
    touching the traces again.  Zero counts are omitted like everywhere
    else.
    """
    graph = DiGraph()
    if num_traces <= 0:
        return graph
    for event in sorted(vertex_counts):
        count = vertex_counts[event]
        if count > 0:
            graph.add_vertex(event, count / num_traces)
    for source, target in sorted(edge_counts):
        count = edge_counts[(source, target)]
        if count > 0:
            graph.add_edge(source, target, count / num_traces)
    return graph
