"""Event dependency graphs (Definition 1).

Each event of a log becomes a vertex weighted with its normalized frequency
(fraction of traces containing it); each consecutive event pair with
non-zero frequency becomes an edge weighted with the fraction of traces in
which the pair occurs consecutively at least once.  Edges with frequency 0
are omitted, exactly as in the paper.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.log.eventlog import EventLog


def dependency_graph(log: EventLog) -> DiGraph:
    """Build the event dependency graph of ``log``."""
    graph = DiGraph()
    for event in sorted(log.alphabet()):
        graph.add_vertex(event, log.vertex_frequency(event))
    for source, target in log.edges():
        graph.add_edge(source, target, log.edge_frequency(source, target))
    return graph
