"""Subgraph checks behind Proposition 3 pruning and the hardness reduction.

Two operations are provided:

* :func:`is_subgraph` — check whether a *concrete* pattern graph (with
  already-mapped vertex names) is a subgraph of a host graph: every pattern
  vertex exists in the host and every pattern edge exists in the host.
  This is the cheap test used during A* search (the mapping already fixes
  vertex identities, so no search is required).
* :func:`subgraph_embeddings` / :func:`find_subgraph_embedding` — enumerate
  injective embeddings of a pattern graph into a host graph (classic
  subgraph-isomorphism search, backtracking with degree-based pruning).
  The paper's NP-hardness proof (Theorem 1) reduces from this problem;
  the search is also used by the pattern-selection guidelines of §2.2 to
  count structurally equivalent patterns.

The embedding semantics is *subgraph* (monomorphism) semantics: pattern
edges must be present in the host, host may have extra edges.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.digraph import DiGraph, Vertex


def is_subgraph(pattern: DiGraph, host: DiGraph) -> bool:
    """Whether ``pattern`` (with concrete vertex names) lies inside ``host``."""
    for vertex in pattern.vertices():
        if vertex not in host:
            return False
    for source, target in pattern.edges():
        if not host.has_edge(source, target):
            return False
    return True


def subgraph_embeddings(
    pattern: DiGraph, host: DiGraph
) -> Iterator[dict[Vertex, Vertex]]:
    """Yield every injective embedding of ``pattern`` into ``host``.

    An embedding maps pattern vertices to distinct host vertices so every
    pattern edge maps onto a host edge.  Vertices are assigned in order of
    decreasing pattern degree, and candidates are filtered by degree and by
    consistency with already-assigned neighbours, which keeps the
    backtracking shallow on the small patterns this library deals with.
    """
    pattern_vertices = sorted(
        pattern.vertices(),
        key=lambda v: (-pattern.degree(v), repr(v)),
    )
    host_vertices = list(host.vertices())

    def candidates(
        vertex: Vertex, assignment: dict[Vertex, Vertex]
    ) -> Iterator[Vertex]:
        used = set(assignment.values())
        for candidate in host_vertices:
            if candidate in used:
                continue
            if host.out_degree(candidate) < pattern.out_degree(vertex):
                continue
            if host.in_degree(candidate) < pattern.in_degree(vertex):
                continue
            consistent = True
            for successor in pattern.successors(vertex):
                if successor in assignment and not host.has_edge(
                    candidate, assignment[successor]
                ):
                    consistent = False
                    break
            if consistent:
                for predecessor in pattern.predecessors(vertex):
                    if predecessor in assignment and not host.has_edge(
                        assignment[predecessor], candidate
                    ):
                        consistent = False
                        break
            if consistent:
                yield candidate

    def backtrack(
        position: int, assignment: dict[Vertex, Vertex]
    ) -> Iterator[dict[Vertex, Vertex]]:
        if position == len(pattern_vertices):
            yield dict(assignment)
            return
        vertex = pattern_vertices[position]
        for candidate in candidates(vertex, assignment):
            assignment[vertex] = candidate
            yield from backtrack(position + 1, assignment)
            del assignment[vertex]

    yield from backtrack(0, {})


def find_subgraph_embedding(
    pattern: DiGraph, host: DiGraph
) -> dict[Vertex, Vertex] | None:
    """The first embedding of ``pattern`` into ``host``, or ``None``."""
    for embedding in subgraph_embeddings(pattern, host):
        return embedding
    return None
