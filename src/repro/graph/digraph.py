"""A minimal labeled directed graph.

Vertices are hashable objects (event names in practice).  Both vertices and
edges carry a single float *weight*; for dependency graphs this is the
normalized frequency of Definition 1.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

Vertex = Hashable


class DiGraph:
    """Directed graph with float-weighted vertices and edges."""

    def __init__(self) -> None:
        self._vertex_weights: dict[Vertex, float] = {}
        self._successors: dict[Vertex, dict[Vertex, float]] = {}
        self._predecessors: dict[Vertex, dict[Vertex, float]] = {}
        # Memoized unrestricted maxima; any mutation invalidates them, so
        # repeated global max_*_weight() calls cost O(1) between changes.
        self._max_vertex_cache: float | None = None
        self._max_edge_cache: float | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex, weight: float = 0.0) -> None:
        """Add ``vertex``, overwriting its weight if already present."""
        if vertex not in self._vertex_weights:
            self._successors[vertex] = {}
            self._predecessors[vertex] = {}
        self._vertex_weights[vertex] = weight
        self._max_vertex_cache = None

    def add_edge(self, source: Vertex, target: Vertex, weight: float = 0.0) -> None:
        """Add the edge ``source -> target``; endpoints are auto-created."""
        if source not in self._vertex_weights:
            self.add_vertex(source)
        if target not in self._vertex_weights:
            self.add_vertex(target)
        self._successors[source][target] = weight
        self._predecessors[target][source] = weight
        self._max_edge_cache = None

    def remove_edge(self, source: Vertex, target: Vertex) -> None:
        if not self.has_edge(source, target):
            raise KeyError(f"no edge {source!r} -> {target!r}")
        del self._successors[source][target]
        del self._predecessors[target][source]
        self._max_edge_cache = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, vertex: object) -> bool:
        return vertex in self._vertex_weights

    def __len__(self) -> int:
        return len(self._vertex_weights)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertex_weights)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        for source, targets in self._successors.items():
            for target in targets:
                yield (source, target)

    def num_edges(self) -> int:
        return sum(len(targets) for targets in self._successors.values())

    def has_edge(self, source: Vertex, target: Vertex) -> bool:
        return target in self._successors.get(source, ())

    def vertex_weight(self, vertex: Vertex) -> float:
        return self._vertex_weights[vertex]

    def edge_weight(self, source: Vertex, target: Vertex) -> float:
        try:
            return self._successors[source][target]
        except KeyError:
            raise KeyError(f"no edge {source!r} -> {target!r}") from None

    def edge_weight_or_zero(self, source: Vertex, target: Vertex) -> float:
        """The edge's weight, or 0.0 when the edge is absent."""
        return self._successors.get(source, {}).get(target, 0.0)

    def max_outgoing_weight(
        self, source: Vertex, targets: "set[Vertex] | frozenset[Vertex]"
    ) -> float:
        """Max weight of edges from ``source`` into ``targets`` (0.0 if none)."""
        best = 0.0
        for target, weight in self._successors.get(source, {}).items():
            if target in targets and weight > best:
                best = weight
        return best

    def max_incoming_weight(
        self, target: Vertex, sources: "set[Vertex] | frozenset[Vertex]"
    ) -> float:
        """Max weight of edges into ``target`` from ``sources`` (0.0 if none)."""
        best = 0.0
        for source, weight in self._predecessors.get(target, {}).items():
            if source in sources and weight > best:
                best = weight
        return best

    def successors(self, vertex: Vertex) -> Iterator[Vertex]:
        return iter(self._successors.get(vertex, ()))

    def predecessors(self, vertex: Vertex) -> Iterator[Vertex]:
        return iter(self._predecessors.get(vertex, ()))

    def out_degree(self, vertex: Vertex) -> int:
        return len(self._successors.get(vertex, ()))

    def in_degree(self, vertex: Vertex) -> int:
        return len(self._predecessors.get(vertex, ()))

    def degree(self, vertex: Vertex) -> int:
        return self.in_degree(vertex) + self.out_degree(vertex)

    # ------------------------------------------------------------------
    # Derived graphs and aggregates
    # ------------------------------------------------------------------
    def induced_subgraph(self, keep: Iterable[Vertex]) -> "DiGraph":
        """The subgraph induced by the vertex subset ``keep``."""
        keep_set = set(keep)
        subgraph = DiGraph()
        for vertex in keep_set:
            if vertex in self._vertex_weights:
                subgraph.add_vertex(vertex, self._vertex_weights[vertex])
        for source in keep_set:
            for target, weight in self._successors.get(source, {}).items():
                if target in keep_set:
                    subgraph.add_edge(source, target, weight)
        return subgraph

    def max_vertex_weight(self, among: Iterable[Vertex] | None = None) -> float:
        """Maximum vertex weight, optionally restricted to ``among``.

        Returns 0.0 when the selection is empty — the natural neutral
        value for the frequency bounds that consume this.
        """
        if among is None:
            if self._max_vertex_cache is None:
                self._max_vertex_cache = max(
                    self._vertex_weights.values(), default=0.0
                )
            return self._max_vertex_cache
        weights = [
            self._vertex_weights[v] for v in among if v in self._vertex_weights
        ]
        return max(weights, default=0.0)

    def max_edge_weight(self, among: Iterable[Vertex] | None = None) -> float:
        """Maximum edge weight within the subgraph induced by ``among``."""
        if among is None:
            if self._max_edge_cache is None:
                self._max_edge_cache = max(
                    (
                        weight
                        for targets in self._successors.values()
                        for weight in targets.values()
                    ),
                    default=0.0,
                )
            return self._max_edge_cache
        among_set = set(among)
        best = 0.0
        for source in among_set:
            for target, weight in self._successors.get(source, {}).items():
                if target in among_set and weight > best:
                    best = weight
        return best

    def copy(self) -> "DiGraph":
        duplicate = DiGraph()
        for vertex, weight in self._vertex_weights.items():
            duplicate.add_vertex(vertex, weight)
        for source, targets in self._successors.items():
            for target, weight in targets.items():
                duplicate.add_edge(source, target, weight)
        return duplicate

    def __repr__(self) -> str:
        return f"DiGraph({len(self)} vertices, {self.num_edges()} edges)"
