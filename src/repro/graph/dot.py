"""Graphviz DOT export of dependency graphs.

Inspecting the two dependency graphs side by side (the paper's Figure 1e/f)
is the first thing an analyst does; this module renders a
:class:`~repro.graph.digraph.DiGraph` — and optionally a mapping between
two of them — as DOT text for Graphviz or any online renderer.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC

from repro.graph.digraph import DiGraph
from repro.log.events import Event


def _quote(name: object) -> str:
    escaped = str(name).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    graph: DiGraph,
    name: str = "dependency_graph",
    min_edge_weight: float = 0.0,
) -> str:
    """Render ``graph`` as a DOT digraph.

    Vertex and edge labels carry the normalized frequencies; edges below
    ``min_edge_weight`` are omitted (useful on noisy logs whose graphs
    have many near-zero edges).
    """
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for vertex in sorted(graph.vertices(), key=str):
        weight = graph.vertex_weight(vertex)
        label = f"{vertex}  {weight:.2f}"
        lines.append(f"  {_quote(vertex)} [label={_quote(label)}];")
    for source, target in sorted(graph.edges(), key=str):
        weight = graph.edge_weight(source, target)
        if weight < min_edge_weight:
            continue
        lines.append(
            f"  {_quote(source)} -> {_quote(target)} "
            f"[label={_quote(f'{weight:.2f}')}];"
        )
    lines.append("}")
    return "\n".join(lines)


def matching_to_dot(
    graph_1: DiGraph,
    graph_2: DiGraph,
    mapping: MappingABC[Event, Event],
    min_edge_weight: float = 0.0,
) -> str:
    """Both dependency graphs as clusters plus dashed correspondence edges."""
    lines = ["digraph matching {", "  rankdir=LR;"]
    for index, graph in ((1, graph_1), (2, graph_2)):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(f'log {index}')};")
        for vertex in sorted(graph.vertices(), key=str):
            lines.append(
                f"    {_quote(f'{index}:{vertex}')} "
                f"[label={_quote(vertex)}];"
            )
        for source, target in sorted(graph.edges(), key=str):
            if graph.edge_weight(source, target) < min_edge_weight:
                continue
            lines.append(
                f"    {_quote(f'{index}:{source}')} -> "
                f"{_quote(f'{index}:{target}')};"
            )
        lines.append("  }")
    for source, target in sorted(mapping.items()):
        lines.append(
            f"  {_quote(f'1:{source}')} -> {_quote(f'2:{target}')} "
            "[style=dashed, color=blue, constraint=false];"
        )
    lines.append("}")
    return "\n".join(lines)


__all__ = ["matching_to_dot", "to_dot"]
