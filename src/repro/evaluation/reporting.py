"""Paper-style text reporting of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot: one row per x-axis value, one column per method, for each measured
quantity (F-measure, time, processed mappings).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.evaluation.harness import MethodRun


def format_runs_table(runs: Sequence[MethodRun]) -> str:
    """A flat table of every run with all measured quantities."""
    header = (
        f"{'task':<28} {'method':<20} {'events':>6} {'traces':>7} "
        f"{'F':>6} {'prec':>6} {'rec':>6} {'score':>8} "
        f"{'time(s)':>9} {'processed':>10}"
    )
    lines = [header, "-" * len(header)]
    for run in runs:
        if run.dnf:
            f_text = prec_text = rec_text = "  DNF"
            score_text = time_text = "     DNF"
        else:
            quality = run.quality
            f_text = f"{quality.f_measure:6.3f}" if quality else "   n/a"
            prec_text = f"{quality.precision:6.3f}" if quality else "   n/a"
            rec_text = f"{quality.recall:6.3f}" if quality else "   n/a"
            score_text = f"{run.score:8.3f}"
            time_text = f"{run.elapsed_seconds:9.4f}"
        lines.append(
            f"{run.task_name:<28} {run.method:<20} {run.num_events:>6} "
            f"{run.num_traces:>7} {f_text:>6} {prec_text:>6} {rec_text:>6} "
            f"{score_text:>8} {time_text:>9} {run.processed_mappings:>10}"
        )
    return "\n".join(lines)


def format_series(
    runs: Sequence[MethodRun],
    value: Callable[[MethodRun], float],
    value_name: str,
    x_axis: str = "num_events",
) -> str:
    """A figure-shaped series table: x-axis rows × method columns.

    ``value`` extracts the plotted quantity from a run (DNF runs print as
    ``DNF``); ``x_axis`` is ``"num_events"`` or ``"num_traces"``.
    """
    methods: list[str] = []
    xs: list[int] = []
    cells: dict[tuple[int, str], str] = {}
    for run in runs:
        x = getattr(run, x_axis)
        if run.method not in methods:
            methods.append(run.method)
        if x not in xs:
            xs.append(x)
        if run.dnf:
            text = "DNF"
        else:
            number = value(run)
            if isinstance(number, float) and math.isnan(number):
                text = "n/a"
            elif abs(number) >= 1000:
                text = f"{number:.3g}"
            else:
                text = f"{number:.3f}"
        cells[(x, run.method)] = text

    x_label = "#events" if x_axis == "num_events" else "#traces"
    width = max(12, max((len(m) for m in methods), default=12) + 1)
    header = f"{value_name} by {x_label}"
    column_header = f"{x_label:>8} " + " ".join(
        f"{method:>{width}}" for method in methods
    )
    lines = [header, column_header, "-" * len(column_header)]
    for x in sorted(xs):
        row = f"{x:>8} " + " ".join(
            f"{cells.get((x, method), '—'):>{width}}" for method in methods
        )
        lines.append(row)
    return "\n".join(lines)
