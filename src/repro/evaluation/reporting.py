"""Paper-style text reporting of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot: one row per x-axis value, one column per method, for each measured
quantity (F-measure, time, processed mappings).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.core.stats import SearchStats
from repro.evaluation.harness import MethodRun
from repro.obs.report import format_observability_report

__all__ = [
    "format_kernel_counters",
    "format_observability_report",
    "format_recovery_stats",
    "format_runs_table",
    "format_series",
    "format_stream_report",
]


def format_runs_table(runs: Sequence[MethodRun]) -> str:
    """A flat table of every run with all measured quantities."""
    header = (
        f"{'task':<28} {'method':<20} {'events':>6} {'traces':>7} "
        f"{'F':>6} {'prec':>6} {'rec':>6} {'score':>8} "
        f"{'time(s)':>9} {'processed':>10}"
    )
    lines = [header, "-" * len(header)]
    for run in runs:
        if run.dnf:
            f_text = prec_text = rec_text = "  DNF"
            score_text = time_text = "     DNF"
        else:
            quality = run.quality
            f_text = f"{quality.f_measure:6.3f}" if quality else "   n/a"
            prec_text = f"{quality.precision:6.3f}" if quality else "   n/a"
            rec_text = f"{quality.recall:6.3f}" if quality else "   n/a"
            score_text = f"{run.score:8.3f}"
            time_text = f"{run.elapsed_seconds:9.4f}"
        lines.append(
            f"{run.task_name:<28} {run.method:<20} {run.num_events:>6} "
            f"{run.num_traces:>7} {f_text:>6} {prec_text:>6} {rec_text:>6} "
            f"{score_text:>8} {time_text:>9} {run.processed_mappings:>10}"
        )
    return "\n".join(lines)


def format_series(
    runs: Sequence[MethodRun],
    value: Callable[[MethodRun], float],
    value_name: str,
    x_axis: str = "num_events",
) -> str:
    """A figure-shaped series table: x-axis rows × method columns.

    ``value`` extracts the plotted quantity from a run (DNF runs print as
    ``DNF``); ``x_axis`` is ``"num_events"`` or ``"num_traces"``.
    """
    methods: list[str] = []
    xs: list[int] = []
    cells: dict[tuple[int, str], str] = {}
    for run in runs:
        x = getattr(run, x_axis)
        if run.method not in methods:
            methods.append(run.method)
        if x not in xs:
            xs.append(x)
        if run.dnf:
            text = "DNF"
        else:
            number = value(run)
            if isinstance(number, float) and math.isnan(number):
                text = "n/a"
            elif abs(number) >= 1000:
                text = f"{number:.3g}"
            else:
                text = f"{number:.3f}"
        cells[(x, run.method)] = text

    x_label = "#events" if x_axis == "num_events" else "#traces"
    width = max(12, max((len(m) for m in methods), default=12) + 1)
    header = f"{value_name} by {x_label}"
    column_header = f"{x_label:>8} " + " ".join(
        f"{method:>{width}}" for method in methods
    )
    lines = [header, column_header, "-" * len(column_header)]
    for x in sorted(xs):
        row = f"{x:>8} " + " ".join(
            f"{cells.get((x, method), '—'):>{width}}" for method in methods
        )
        lines.append(row)
    return "\n".join(lines)


def format_kernel_counters(stats: SearchStats, label: str = "") -> str:
    """One line of frequency-kernel observability counters.

    Shows where evaluation effort went: how many automata were compiled
    vs served from the memo, how many bitset posting-list operations ran,
    and how many trace cells the tier-3 scans actually touched.  A run
    dominated by ``cells`` did real scanning; a run dominated by memo and
    bigram hits never left the bitset tier.
    """
    prefix = f"{label}: " if label else ""
    return (
        f"{prefix}kernel counters — "
        f"freq evals {stats.frequency_evaluations}, "
        f"automata built {stats.automaton_builds} / "
        f"memo hits {stats.automaton_hits}, "
        f"bitset ops {stats.bitset_intersections}, "
        f"trace cells scanned {stats.trace_cells_scanned}"
    )


def format_stream_report(updates: Sequence["StreamUpdate"]) -> str:
    """A per-update table of an online matching run.

    One row per :meth:`~repro.stream.engine.OnlineMatcher.update` call:
    the committed trace count, the realized pattern normal distance at
    the live frequencies, the relative drift against the last re-match's
    baseline, and what the engine did about it (``hold``, or the matcher
    method it ran and why).
    """
    actions = []
    for update in updates:
        if update.rematched:
            action = f"re-match[{update.reason}]:{update.method}"
            if update.degraded:
                action += f" gap<={update.gap:.3f}"
            actions.append(action)
        else:
            actions.append("hold")
    action_width = max([len(action) for action in actions] + [6])
    header = (
        f"{'update':>6} {'traces':>7} {'score':>9} {'drift':>7} "
        f"{'action':<{action_width}} {'time(s)':>8} {'mapping':<9}"
    )
    lines = [header, "-" * len(header)]
    for update, action in zip(updates, actions):
        mapping_text = (
            ("changed" if update.mapping_changed else "kept")
            if update.rematched
            else "-"
        )
        drift_text = (
            "inf" if math.isinf(update.drift) else f"{update.drift:7.4f}"
        )
        lines.append(
            f"{update.update_id:>6} {update.num_traces:>7} "
            f"{update.score:9.3f} {drift_text:>7} {action:<{action_width}} "
            f"{update.elapsed_seconds:8.3f} {mapping_text:<9}"
        )
    return "\n".join(lines)


def format_recovery_stats(recovery, quarantine=None, label: str = "") -> str:
    """An operator-facing summary of the resilience counters.

    One line of :class:`~repro.resilience.recovery.RecoveryStats`
    counters (quarantines, isolated listener errors, the self-healing
    check→verify→rebuild funnel), followed — when a
    :class:`~repro.resilience.quarantine.QuarantineStore` is given and
    non-empty — by its per-reason breakdown.  All zeros means nothing
    ever degraded.
    """
    prefix = f"{label}: " if label else ""
    lines = [
        f"{prefix}recovery — "
        f"quarantined {recovery.quarantined_traces}, "
        f"listener errors {recovery.listener_errors}, "
        f"checks {recovery.invariant_checks} "
        f"(failed {recovery.cheap_check_failures}), "
        f"verifies {recovery.verifications} "
        f"(diverged {recovery.divergences}), "
        f"rebuilds {recovery.rebuilds} "
        f"(suppressed {recovery.rebuilds_suppressed})"
    ]
    supervision = (
        recovery.jobs_retried,
        recovery.workers_respawned,
        recovery.jobs_poisoned,
        recovery.jobs_deadline_exceeded,
        recovery.backpressure_rejections,
        recovery.shm_segments_reaped,
    )
    if any(supervision):
        lines.append(
            f"{prefix}supervision — "
            f"retries {recovery.jobs_retried}, "
            f"respawns {recovery.workers_respawned}, "
            f"poisoned {recovery.jobs_poisoned}, "
            f"deadlines {recovery.jobs_deadline_exceeded}, "
            f"backpressure {recovery.backpressure_rejections}, "
            f"shm reaped {recovery.shm_segments_reaped}"
        )
    if quarantine is not None and quarantine.total_seen:
        lines.append(prefix + quarantine.summary())
    return "\n".join(lines)
