"""Accuracy criteria (Section 6).

With ``truth`` the manually discovered ground-truth mapping and ``found``
the mapping a method returns:

    precision = |found ∩ truth| / |found|
    recall    = |found ∩ truth| / |truth|
    F-measure = 2 · precision · recall / (precision + recall)

A pair counts as correct only when both its source and target agree.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass

from repro.log.events import Event


@dataclass(frozen=True)
class MatchQuality:
    """Precision, recall and F-measure of one returned mapping."""

    precision: float
    recall: float
    f_measure: float
    correct_pairs: int
    found_pairs: int
    truth_pairs: int


def evaluate_mapping(
    found: MappingABC[Event, Event],
    truth: MappingABC[Event, Event],
) -> MatchQuality:
    """Score ``found`` against ``truth``.

    Empty ``found`` or ``truth`` gives zero for the undefined ratios
    (0/0 → 0), matching the usual convention in matching evaluation.
    """
    correct = sum(
        1 for source, target in found.items() if truth.get(source) == target
    )
    precision = correct / len(found) if found else 0.0
    recall = correct / len(truth) if truth else 0.0
    if precision + recall == 0.0:
        f_measure = 0.0
    else:
        f_measure = 2.0 * precision * recall / (precision + recall)
    return MatchQuality(
        precision=precision,
        recall=recall,
        f_measure=f_measure,
        correct_pairs=correct,
        found_pairs=len(found),
        truth_pairs=len(truth),
    )
