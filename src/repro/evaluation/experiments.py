"""Per-figure experiment configurations (the paper's evaluation, §6).

Each function reproduces one table or figure and returns plain data; the
benchmark suite prints it via `repro.evaluation.reporting` and wraps the
timed kernels with pytest-benchmark.  Sizes default to laptop-friendly
values; pass the paper-scale parameters explicitly to run the full
configurations (see EXPERIMENTS.md).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.datagen.random_logs import generate_random_pair
from repro.datagen.reallike import generate_reallike
from repro.datagen.synthetic import generate_synthetic
from repro.evaluation.harness import MethodRun, run_method, sweep_events, sweep_traces
from repro.log.statistics import LogCharacteristics, characterize

#: Methods compared in Figures 7–8 (exact approaches).
EXACT_FIGURE_METHODS = (
    "pattern-tight",
    "pattern-simple",
    "vertex",
    "vertex-edge",
    "iterative",
)

#: Methods compared in Figures 9–10 (heuristics; Exact = Pattern-Tight).
HEURISTIC_FIGURE_METHODS = (
    "pattern-tight",
    "heuristic-simple",
    "heuristic-advanced",
    "vertex",
    "vertex-edge",
    "iterative",
)

#: Methods compared in Figure 12 (large synthetic; adds Entropy-only).
LARGE_FIGURE_METHODS = (
    "pattern-tight",
    "vertex-edge",
    "heuristic-simple",
    "heuristic-advanced",
    "vertex",
    "iterative",
    "entropy",
)


def table3_characteristics(
    reallike_traces: int = 3000,
    synthetic_traces: int = 10_000,
    synthetic_blocks: int = 10,
    random_traces: int = 1000,
    seed: int = 7,
) -> list[LogCharacteristics]:
    """Characteristics of the three datasets (Table 3)."""
    rows = []
    for task, label in (
        (generate_reallike(num_traces=reallike_traces, seed=seed), "real"),
        (
            generate_synthetic(
                num_blocks=synthetic_blocks,
                num_traces=synthetic_traces,
                seed=seed + 4,
            ),
            "synthetic",
        ),
        (generate_random_pair(num_traces=random_traces, seed=seed + 8), "random"),
    ):
        rows.append(
            characterize(task.log_1, num_patterns=len(task.patterns), name=label)
        )
    return rows


def figure7_exact_vs_events(
    sizes: Sequence[int] = (2, 4, 6, 8, 10, 11),
    num_traces: int = 3000,
    methods: Sequence[str] = EXACT_FIGURE_METHODS,
    seed: int = 7,
    node_budget: int | None = 200_000,
    time_budget: float | None = None,
) -> list[MethodRun]:
    """Exact approaches over various event-set sizes (Figure 7a–c)."""
    task = generate_reallike(num_traces=num_traces, seed=seed)
    return sweep_events(
        task, sizes, methods, node_budget=node_budget, time_budget=time_budget
    )


def figure8_exact_vs_traces(
    counts: Sequence[int] = (500, 1000, 1500, 2000, 2500, 3000),
    num_events: int = 8,
    methods: Sequence[str] = EXACT_FIGURE_METHODS,
    seed: int = 7,
    node_budget: int | None = 200_000,
    time_budget: float | None = None,
) -> list[MethodRun]:
    """Exact approaches over various trace counts (Figure 8a–c)."""
    task = generate_reallike(num_traces=max(counts), seed=seed)
    task = task.project_events(num_events)
    return sweep_traces(
        task, counts, methods, node_budget=node_budget, time_budget=time_budget
    )


def figure9_heuristic_vs_events(
    sizes: Sequence[int] = (2, 4, 6, 8, 10, 11),
    num_traces: int = 3000,
    methods: Sequence[str] = HEURISTIC_FIGURE_METHODS,
    seed: int = 7,
    node_budget: int | None = 200_000,
    time_budget: float | None = None,
) -> list[MethodRun]:
    """Heuristic vs exact approaches over event-set sizes (Figure 9a–c)."""
    task = generate_reallike(num_traces=num_traces, seed=seed)
    return sweep_events(
        task, sizes, methods, node_budget=node_budget, time_budget=time_budget
    )


def figure10_heuristic_vs_traces(
    counts: Sequence[int] = (500, 1000, 1500, 2000, 2500, 3000),
    num_events: int = 8,
    methods: Sequence[str] = HEURISTIC_FIGURE_METHODS,
    seed: int = 7,
    node_budget: int | None = 200_000,
    time_budget: float | None = None,
) -> list[MethodRun]:
    """Heuristic vs exact approaches over trace counts (Figure 10a–c)."""
    task = generate_reallike(num_traces=max(counts), seed=seed)
    task = task.project_events(num_events)
    return sweep_traces(
        task, counts, methods, node_budget=node_budget, time_budget=time_budget
    )


def figure12_large_synthetic(
    sizes: Sequence[int] = (10, 20, 40, 60, 80, 100),
    num_traces: int = 10_000,
    num_blocks: int = 10,
    methods: Sequence[str] = LARGE_FIGURE_METHODS,
    seed: int = 11,
    node_budget: int | None = 50_000,
    time_budget: float | None = 60.0,
) -> list[MethodRun]:
    """Larger synthetic data over up to 100 events (Figure 12).

    The exact searches (``pattern-tight``, ``vertex-edge``) are expected
    to DNF beyond ~20 events, as in the paper.
    """
    task = generate_synthetic(
        num_blocks=num_blocks, num_traces=num_traces, seed=seed
    )
    return sweep_events(
        task, sizes, methods, node_budget=node_budget, time_budget=time_budget
    )


def table4_random_mapping_counts(
    trials: int = 1000,
    num_events: int = 4,
    num_traces: int = 1000,
    methods: Sequence[str] = (
        "pattern-tight",
        "heuristic-simple",
        "heuristic-advanced",
    ),
    seed: int = 0,
) -> dict[str, Counter[tuple[tuple[str, str], ...]]]:
    """Counts of returned mappings over random-log trials (Table 4).

    Each trial generates a fresh random log pair; for every method the
    returned mapping (as a sorted pair tuple) is tallied.  With no true
    correspondence present, no mapping should dominate.
    """
    counts: dict[str, Counter[tuple[tuple[str, str], ...]]] = {
        method: Counter() for method in methods
    }
    for trial in range(trials):
        task = generate_random_pair(
            num_events=num_events, num_traces=num_traces, seed=seed + trial
        )
        for method in methods:
            run = run_method(task, method)
            assert run.mapping is not None  # no budgets => never DNF
            mapping_key = tuple(sorted(run.mapping.as_dict().items()))
            counts[method][mapping_key] += 1
    return counts
