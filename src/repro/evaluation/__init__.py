"""Evaluation: accuracy metrics, experiment harness and reporting.

`metrics` implements the paper's precision/recall/F-measure criteria;
`harness` runs methods on tasks with DNF budgets and collects timing and
search statistics; `reporting` renders paper-style text tables;
`experiments` wires the concrete per-figure experiment configurations
shared by the benchmark suite and the examples.
"""

from repro.evaluation.explain import (
    MappingExplanation,
    explain_mapping,
    format_explanation,
)
from repro.evaluation.harness import MethodRun, run_method, sweep_events, sweep_traces
from repro.evaluation.metrics import MatchQuality, evaluate_mapping
from repro.evaluation.reporting import (
    format_runs_table,
    format_series,
    format_stream_report,
)

__all__ = [
    "MappingExplanation",
    "MatchQuality",
    "MethodRun",
    "evaluate_mapping",
    "explain_mapping",
    "format_explanation",
    "format_runs_table",
    "format_series",
    "format_stream_report",
    "run_method",
    "sweep_events",
    "sweep_traces",
]
