"""Experiment harness.

Runs matching methods on :class:`~repro.datagen.task.MatchingTask`
instances, with the budgets that turn intractable exact runs into honest
DNF rows (the paper's Figure 12 reports exactly such "cannot return
results" outcomes), and sweeps over event-set sizes and trace counts the
way the paper's figures do.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.astar import SearchBudgetExceeded
from repro.core.mapping import Mapping
from repro.core.matcher import EventMatcher
from repro.core.stats import SearchStats
from repro.datagen.task import MatchingTask
from repro.evaluation.metrics import MatchQuality, evaluate_mapping
from repro.obs.probe import NULL_PROBE, Probe


@dataclass(frozen=True)
class MethodRun:
    """One (method, task) execution with quality and cost measurements."""

    method: str
    task_name: str
    num_events: int
    num_traces: int
    quality: MatchQuality | None
    score: float
    elapsed_seconds: float
    processed_mappings: int
    expanded_nodes: int
    dnf: bool
    mapping: Mapping | None = None
    #: Full counter set of the run (kernel observability included).
    stats: SearchStats | None = None

    @property
    def f_measure(self) -> float:
        return self.quality.f_measure if self.quality else 0.0


def run_method(
    task: MatchingTask,
    method: str,
    node_budget: int | None = None,
    time_budget: float | None = None,
    probe: Probe | None = None,
    workers: int = 1,
    blocking=None,
) -> MethodRun:
    """Run one method on one task; budget overruns become DNF rows.

    ``probe`` threads observability hooks (a ``harness.run`` span plus
    everything the matcher reports) into the run; DNF rows still record
    the partial stats gathered before the budget tripped.

    ``workers`` routes the exact ``pattern-*`` searches through the
    root-split parallel matcher (budgets per shard; a run is DNF only
    when some shard exhausted its budget).  ``workers=1`` is the serial
    path, byte-identical to before the parameter existed.
    """
    if probe is None:
        probe = NULL_PROBE
    matcher = EventMatcher(task.log_1, task.log_2, patterns=task.patterns)
    num_events = len(task.log_1.alphabet())
    num_traces = len(task.log_1)
    try:
        # Strict: the paper's figures report budget overruns as DNF rows,
        # not as anytime incumbents — keep those rows honest.
        with probe.span(
            "harness.run",
            task=task.name,
            method=method,
            num_events=num_events,
        ):
            result = matcher.run(
                method, node_budget=node_budget, time_budget=time_budget,
                strict=True, probe=probe, workers=workers,
                blocking=blocking,
            )
    except SearchBudgetExceeded as overrun:
        if probe.enabled:
            probe.record_search_stats(overrun.stats)
        return MethodRun(
            method=method,
            task_name=task.name,
            num_events=num_events,
            num_traces=num_traces,
            quality=None,
            score=float("nan"),
            elapsed_seconds=float("nan"),
            processed_mappings=overrun.stats.processed_mappings,
            expanded_nodes=overrun.stats.expanded_nodes,
            dnf=True,
            mapping=None,
            stats=overrun.stats,
        )
    quality = (
        evaluate_mapping(result.mapping, task.truth) if len(task.truth) else None
    )
    return MethodRun(
        method=method,
        task_name=task.name,
        num_events=num_events,
        num_traces=num_traces,
        quality=quality,
        score=result.score,
        elapsed_seconds=result.elapsed_seconds,
        processed_mappings=result.stats.processed_mappings,
        expanded_nodes=result.stats.expanded_nodes,
        dnf=False,
        mapping=result.mapping,
        stats=result.stats,
    )


def _parallel_grid(
    task: MatchingTask,
    axis: str,
    values: Sequence[int],
    methods: Sequence[str],
    node_budget: int | None,
    time_budget: float | None,
    probe: Probe | None,
    workers: int,
    task_spec: "TaskSpec | None",
) -> list[MethodRun]:
    # Deferred import: repro.parallel.sweep imports run_method from this
    # module inside its worker function, so a top-level import back into
    # it would be circular.
    from repro.parallel.sweep import TaskSpec, parallel_sweep

    spec = task_spec if task_spec is not None else TaskSpec.from_task(task)
    cells = [
        ((axis, value), method) for value in values for method in methods
    ]
    return parallel_sweep(
        spec,
        cells,
        workers=workers,
        node_budget=node_budget,
        time_budget=time_budget,
        probe=probe,
    )


def sweep_events(
    task: MatchingTask,
    sizes: Sequence[int],
    methods: Sequence[str],
    node_budget: int | None = None,
    time_budget: float | None = None,
    probe: Probe | None = None,
    workers: int = 1,
    task_spec: "TaskSpec | None" = None,
) -> list[MethodRun]:
    """Vary the event-set size (the paper's Figures 7, 9, 12 x-axis).

    Each size projects both logs onto the first ``size`` events of
    ``log_1`` (and their ground-truth images in ``log_2``).

    ``workers > 1`` fans the (size, method) grid over a process pool
    (:func:`repro.parallel.sweep.parallel_sweep`), returning the same
    runs in the same order; pass ``task_spec`` (a cheap picklable
    recipe) to spare each worker one pickled copy of the full task.
    ``workers=1`` keeps this serial loop untouched.
    """
    if workers > 1:
        return _parallel_grid(
            task, "events", sizes, methods,
            node_budget, time_budget, probe, workers, task_spec,
        )
    runs = []
    for size in sizes:
        subtask = task.project_events(size)
        for method in methods:
            runs.append(
                run_method(
                    subtask,
                    method,
                    node_budget=node_budget,
                    time_budget=time_budget,
                    probe=probe,
                )
            )
    return runs


def sweep_traces(
    task: MatchingTask,
    counts: Sequence[int],
    methods: Sequence[str],
    node_budget: int | None = None,
    time_budget: float | None = None,
    probe: Probe | None = None,
    workers: int = 1,
    task_spec: "TaskSpec | None" = None,
) -> list[MethodRun]:
    """Vary the trace count (the paper's Figures 8 and 10 x-axis).

    ``workers``/``task_spec`` parallelize the grid exactly as in
    :func:`sweep_events`.
    """
    if workers > 1:
        return _parallel_grid(
            task, "traces", counts, methods,
            node_budget, time_budget, probe, workers, task_spec,
        )
    runs = []
    for count in counts:
        subtask = task.take_traces(count)
        for method in methods:
            runs.append(
                run_method(
                    subtask,
                    method,
                    node_budget=node_budget,
                    time_budget=time_budget,
                    probe=probe,
                )
            )
    return runs
