"""Explaining a mapping: per-pattern contribution breakdown.

A matching result is only trustworthy if an analyst can see *why* the
matcher preferred it.  :func:`explain_mapping` decomposes the pattern
normal distance of a mapping into one row per pattern — its frequency in
each log under the mapping and its contribution ``d(p)`` — and
:func:`format_explanation` renders the breakdown as a text table, worst
matched patterns first, so disagreements jump out.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC, Sequence
from dataclasses import dataclass

from repro.core.distance import frequency_similarity
from repro.core.scoring import build_pattern_set
from repro.log.events import Event
from repro.log.eventlog import EventLog
from repro.patterns.ast import Pattern
from repro.patterns.matching import PatternFrequencyEvaluator


@dataclass(frozen=True)
class PatternExplanation:
    """One pattern's role in a mapping's score."""

    pattern: Pattern
    frequency_1: float
    frequency_2: float
    contribution: float
    #: False when some event of the pattern is not covered by the mapping
    #: (the pattern then contributes nothing).
    covered: bool


@dataclass(frozen=True)
class MappingExplanation:
    """Full decomposition of a mapping's pattern normal distance."""

    rows: tuple[PatternExplanation, ...]
    total_score: float

    def worst(self, count: int = 5) -> list[PatternExplanation]:
        """The ``count`` covered patterns with the lowest contribution."""
        covered = [row for row in self.rows if row.covered]
        return sorted(covered, key=lambda row: row.contribution)[:count]


def explain_mapping(
    log_1: EventLog,
    log_2: EventLog,
    mapping: MappingABC[Event, Event],
    patterns: Sequence[Pattern] = (),
    include_vertices: bool = True,
    include_edges: bool = True,
) -> MappingExplanation:
    """Decompose the pattern normal distance of ``mapping``.

    The pattern set is composed the same way the matchers compose it:
    vertices and edges of ``log_1``'s dependency graph plus the given
    complex ``patterns``.
    """
    full_set = build_pattern_set(
        log_1,
        complex_patterns=patterns,
        include_vertices=include_vertices,
        include_edges=include_edges,
    )
    evaluator_1 = PatternFrequencyEvaluator(log_1)
    evaluator_2 = PatternFrequencyEvaluator(log_2)
    mapping_dict = dict(mapping)

    rows = []
    total = 0.0
    for pattern in full_set:
        frequency_1 = evaluator_1.frequency(pattern)
        if pattern.event_set() <= mapping_dict.keys():
            frequency_2 = evaluator_2.mapped_frequency(pattern, mapping_dict)
            contribution = frequency_similarity(frequency_1, frequency_2)
            covered = True
            total += contribution
        else:
            frequency_2 = 0.0
            contribution = 0.0
            covered = False
        rows.append(
            PatternExplanation(
                pattern=pattern,
                frequency_1=frequency_1,
                frequency_2=frequency_2,
                contribution=contribution,
                covered=covered,
            )
        )
    return MappingExplanation(rows=tuple(rows), total_score=total)


def format_explanation(
    explanation: MappingExplanation, limit: int | None = None
) -> str:
    """Render the breakdown, lowest contributions first.

    ``limit`` caps the number of printed rows (all rows by default).
    """
    ordered = sorted(
        explanation.rows,
        key=lambda row: (not row.covered, row.contribution),
    )
    if limit is not None:
        ordered = ordered[:limit]
    header = f"{'pattern':<52} {'f1':>6} {'f2':>6} {'d(p)':>6}"
    lines = [header, "-" * len(header)]
    for row in ordered:
        if row.covered:
            lines.append(
                f"{repr(row.pattern):<52.52} {row.frequency_1:>6.3f} "
                f"{row.frequency_2:>6.3f} {row.contribution:>6.3f}"
            )
        else:
            lines.append(
                f"{repr(row.pattern):<52.52} {row.frequency_1:>6.3f} "
                f"{'—':>6} {'n/a':>6}"
            )
    lines.append("-" * len(header))
    lines.append(f"{'pattern normal distance':<52} {'':>6} {'':>6} "
                 f"{explanation.total_score:>6.2f}")
    return "\n".join(lines)


__all__ = [
    "MappingExplanation",
    "PatternExplanation",
    "explain_mapping",
    "format_explanation",
]
